module L = Ir.Layer
module S = Dory.Schedule
module Tile = Arch.Tile
module P = Program
module Dtype = Tensor.Dtype
module K = Nn.Kernels

(* A compiled execution plan resolves, once per artifact, everything the
   per-request slow path ([Exec_accel.run]) recomputes per request: tile
   instance dims, L1 slot layouts, DMA window geometry as flat blit lists,
   weight/bias slices as decoded flat arrays, padded-input shapes, the
   per-step counters and the trace timeline. The per-request loop is then
   pure data movement and kernel math over preallocated scratch arenas.

   Byte-identity contract (enforced by the golden snapshots and the
   plan-on/plan-off differential tests): for a fault-free run of a
   well-formed program, the fast path produces exactly the slow path's
   output bytes, cycle counters, trace events and memory high-water marks.
   The proof obligations live next to each piece below; the load-bearing
   one is that integer addition is exact, so summing over a zero-padded
   input in a dense loop equals the slow path's bounds-checked sum. *)

(* --- Plan data types ---------------------------------------------------- *)

type epilogue = {
  ep_k : int;  (* output channels of the tile *)
  ep_spatial : int;  (* pre-pool spatial extent (oh * ow) *)
  ep_bias : int array option;  (* full decoded bias; slice starts at ep_bias_off *)
  ep_bias_off : int;
  ep_shift : int option;
  ep_relu : bool;
  ep_out_dtype : Dtype.t;
  (* pwy, pwx, psy, psx, oh_pre, ow_pre of a fused max pool *)
  ep_pool : (int * int * int * int * int * int) option;
  ep_oy : int;  (* final (post-pool) output dims *)
  ep_ox : int;
}

type compute =
  | CConv of {
      cv_chans : int;  (* input channels of the slice *)
      cv_h : int;  (* padded input height *)
      cv_w : int;  (* padded input width *)
      cv_rows : int;  (* valid (DMA-ed) interior rows *)
      cv_cols : int;
      cv_pt : int;  (* interior origin inside the padded block *)
      cv_pl : int;
      cv_k : int;
      cv_cg : int;  (* weight channel dim (c / groups) *)
      cv_fy : int;
      cv_fx : int;
      cv_sy : int;
      cv_sx : int;
      cv_groups : int;
      cv_oh : int;  (* pre-pool conv output dims on the padded input *)
      cv_ow : int;
      cv_wdata : int array;  (* full decoded weights *)
      cv_woff : int;  (* flat element offset of the k0 slice *)
      cv_in_dtype : Dtype.t;
      cv_ep : epilogue;
    }
  | CDense of {
      dn_c : int;
      dn_k : int;
      dn_wdata : int array;
      dn_woff : int;
      dn_in_dtype : Dtype.t;
      dn_ep : epilogue;
    }
  | CAdd of { ad_n : int; ad_in_dtype : Dtype.t; ad_ep : epilogue }
  | CPool of {
      (* Generic fallback: a prebuilt sliced layer executed through the
         reference [Ir.Layer.execute], with only the input decode and
         output encode on the fast bulk path. *)
      pl_layer : L.t;
      pl_chans : int;
      pl_rows : int;
      pl_cols : int;
      pl_h : int;  (* padded dims (pads are zero for valid pooling) *)
      pl_w : int;
      pl_pt : int;
      pl_pl : int;
      pl_in_dtype : Dtype.t;
    }

type scratch_spec = {
  ss_pin : int;
  ss_acc : int;
  ss_out : int;
  ss_tensor : (Dtype.t * int array) option;
}

type inst = {
  i_in_blits : int array;  (* packed (src_off, dst_off, len) triples, L2 -> L1 *)
  i_out_blits : int array;  (* packed triples, L1 -> L2 *)
  i_in_off : int;  (* L1 offset of the dense input block *)
  i_out_off : int;  (* L1 offset of the output block *)
  i_out_dtype : Dtype.t;
  i_out_len : int;  (* elements encoded into the L1 output block *)
  i_compute : compute;
  i_scr : scratch_spec;
}

type tevent = {
  tv_track : string;
  tv_ts : int;  (* relative to the step's t0 *)
  tv_dur : int;
  tv_args : (string * Trace.Json.t) list;
  tv_name : string;
}

type astep = {
  a_insts : inst array;
  a_counters : Counters.t;  (* fault-free template, copied per request *)
  a_tpl : tevent array;  (* trace timeline, replayed per request *)
  a_fail : exn option;  (* deferred slow-path raise for malformed steps *)
}

type scratch = {
  sc_pin : int array;
  sc_acc : int array;
  sc_out : int array;
  sc_tensor : Tensor.t option;
}

type arena = { ar_l2 : Mem.t; ar_l1 : Mem.t; ar_scratch : scratch array array }

type t = {
  p_prog : P.t;
  p_steps : astep option array;  (* aligned with [prog.steps]; None = Cpu *)
  p_l2_image : Bytes.t;  (* post-weight-load L2 snapshot *)
  p_l2_hwm : int;
  p_l1_size : int;
  p_l2_size : int;
  p_arena : arena option ref Domain.DLS.key;
  p_tiles : int;
  p_scratch_words : int;
}

type stats = {
  accel_steps : int;
  tiles : int;
  scratch_words : int;
  image_bytes : int;
}

let program t = t.p_prog

let stats t =
  {
    accel_steps =
      Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.p_steps;
    tiles = t.p_tiles;
    scratch_words = t.p_scratch_words;
    image_bytes = Bytes.length t.p_l2_image;
  }

(* --- Build-time geometry ------------------------------------------------- *)

(* Row-blit triples of [Exec_accel.copy_window], in the same order; returns
   (chunks, bytes) under the same cost formula. *)
let window_blits ~to_l1 ~elt_bytes ~l2_off ~l1_off ~full_h ~full_w ~ch0 ~y0 ~x0
    ~chans ~rows ~cols acc =
  let bytes_per_row = cols * elt_bytes in
  for ch = 0 to chans - 1 do
    for row = 0 to rows - 1 do
      let l2_pos =
        l2_off + ((((ch0 + ch) * full_h) + (y0 + row)) * full_w + x0) * elt_bytes
      in
      let l1_pos = l1_off + (((ch * rows) + row) * bytes_per_row) in
      acc :=
        (if to_l1 then (l2_pos, l1_pos, bytes_per_row)
         else (l1_pos, l2_pos, bytes_per_row))
        :: !acc
    done
  done;
  let chunks = if cols = full_w then chans else chans * rows in
  (chunks, chans * rows * bytes_per_row)

(* Coalesce blits that are consecutive in both source and destination into
   one longer blit (an untiled layer's whole window collapses to a single
   copy). The copied bytes and the destination high-water mark are
   unchanged, only the call count drops. *)
let pack_blits triples =
  let merged =
    List.fold_left
      (fun acc (s, d, l) ->
        match acc with
        | (ps, pd, pl) :: rest when ps + pl = s && pd + pl = d ->
            (ps, pd, pl + l) :: rest
        | _ -> (s, d, l) :: acc)
      [] triples
  in
  let merged = List.rev merged in
  let out = Array.make (3 * List.length merged) 0 in
  List.iteri
    (fun i (s, d, l) ->
      out.(3 * i) <- s;
      out.((3 * i) + 1) <- d;
      out.((3 * i) + 2) <- l)
    merged;
  out

let replay_blits ~src ~dst blits =
  let n = Array.length blits / 3 in
  for i = 0 to n - 1 do
    Mem.blit ~src ~src_off:blits.(3 * i) ~dst ~dst_off:blits.((3 * i) + 1)
      ~len:blits.((3 * i) + 2)
  done

(* --- Fast kernels -------------------------------------------------------- *)

(* Decode the dense L1 input block into the interior of a zero-padded flat
   array. The border elements are zero at arena allocation and are never
   written, so they stay zero across reuses — equivalent to the slow
   path's fresh zero tensor per tile. *)
let fill_padded ~l1 ~dtype ~l1_off ~dst ~chans ~rows ~cols ~ph ~pw ~pt ~pl =
  if rows = ph && cols = pw then
    Mem.read_flat_into l1 dtype l1_off dst ~pos:0 ~len:(chans * rows * cols)
  else begin
    let elt = Dtype.sim_bytes dtype in
    for ch = 0 to chans - 1 do
      let ch_pos = (((ch * ph) + pt) * pw) + pl in
      for r = 0 to rows - 1 do
        Mem.read_flat_into l1 dtype
          (l1_off + (((ch * rows) + r) * cols * elt))
          dst
          ~pos:(ch_pos + (r * pw))
          ~len:cols
      done
    done
  end

(* Identical arithmetic to [Nn.Kernels.conv2d] over a pre-zero-padded
   input: the slow path skips out-of-range taps, this loop includes them —
   they contribute exactly 0 to an exact integer sum. *)
let conv_kernel ~cv_h:_ ~cv_w ~cv_k ~cv_cg ~cv_fy ~cv_fx ~cv_sy ~cv_sx ~cv_groups
    ~cv_oh ~cv_ow ~wdata ~woff ~chw pin acc =
  let kpg = cv_k / cv_groups in
  for ko = 0 to cv_k - 1 do
    let grp = ko / kpg in
    let w_k_base = woff + (ko * cv_cg * cv_fy * cv_fx) in
    for oy = 0 to cv_oh - 1 do
      let out_row = ((ko * cv_oh) + oy) * cv_ow in
      for ox = 0 to cv_ow - 1 do
        let acc_v = ref 0 in
        for ci = 0 to cv_cg - 1 do
          let in_ch_base = ((grp * cv_cg) + ci) * chw in
          let w_base = w_k_base + (ci * cv_fy * cv_fx) in
          for ky = 0 to cv_fy - 1 do
            let in_row =
              in_ch_base + ((((oy * cv_sy) + ky) * cv_w) + (ox * cv_sx))
            in
            let w_row = w_base + (ky * cv_fx) in
            for kx = 0 to cv_fx - 1 do
              acc_v :=
                !acc_v
                + Array.unsafe_get pin (in_row + kx)
                  * Array.unsafe_get wdata (w_row + kx)
            done
          done
        done;
        Array.unsafe_set acc (out_row + ox) !acc_v
      done
    done
  done

let dense_kernel ~dn_c ~dn_k ~wdata ~woff pin acc =
  for ko = 0 to dn_k - 1 do
    let w_base = woff + (ko * dn_c) in
    let acc_v = ref 0 in
    for ci = 0 to dn_c - 1 do
      acc_v := !acc_v + (Array.unsafe_get pin ci * Array.unsafe_get wdata (w_base + ci))
    done;
    Array.unsafe_set acc ko !acc_v
  done

(* Bias add + requantize/cast + optional fused max pool, element-for-element
   [Ir.Layer.apply_epilogue]: same [asr] shift, same clamp bounds (via the
   very same [Dtype.clamp] on the cast path), same [min_int]-seeded max. *)
let run_epilogue ep acc out =
  let spatial = ep.ep_spatial in
  let n = ep.ep_k * spatial in
  (match ep.ep_bias with
  | None -> ()
  | Some b ->
      for ko = 0 to ep.ep_k - 1 do
        let bv = Array.unsafe_get b (ep.ep_bias_off + ko) in
        let base = ko * spatial in
        for s = 0 to spatial - 1 do
          let i = base + s in
          Array.unsafe_set acc i (Array.unsafe_get acc i + bv)
        done
      done);
  let requant dst =
    match ep.ep_shift with
    | Some shift ->
        let lo = if ep.ep_relu then 0 else Dtype.min_value ep.ep_out_dtype in
        let hi = Dtype.max_value ep.ep_out_dtype in
        for i = 0 to n - 1 do
          let v = Array.unsafe_get acc i asr shift in
          let v = if v < lo then lo else if v > hi then hi else v in
          Array.unsafe_set dst i v
        done
    | None ->
        let dt = ep.ep_out_dtype in
        if ep.ep_relu then
          for i = 0 to n - 1 do
            Array.unsafe_set dst i (Dtype.clamp dt (max 0 (Array.unsafe_get acc i)))
          done
        else
          for i = 0 to n - 1 do
            Array.unsafe_set dst i (Dtype.clamp dt (Array.unsafe_get acc i))
          done
  in
  match ep.ep_pool with
  | None -> requant out
  | Some (pwy, pwx, psy, psx, oh, ow) ->
      requant acc;
      for ko = 0 to ep.ep_k - 1 do
        let ch_base = ko * oh * ow in
        for py = 0 to ep.ep_oy - 1 do
          let out_row = ((ko * ep.ep_oy) + py) * ep.ep_ox in
          for px = 0 to ep.ep_ox - 1 do
            let m = ref min_int in
            for ky = 0 to pwy - 1 do
              let row = ch_base + ((((py * psy) + ky) * ow) + (px * psx)) in
              for kx = 0 to pwx - 1 do
                let v = Array.unsafe_get acc (row + kx) in
                if v > !m then m := v
              done
            done;
            Array.unsafe_set out (out_row + px) !m
          done
        done
      done

(* --- Build --------------------------------------------------------------- *)

let decode_tensor l2 off (tensor : Tensor.t) =
  let n = Tensor.numel tensor in
  let data = Array.make n 0 in
  Mem.read_flat_into l2 (Tensor.dtype tensor) off data ~pos:0 ~len:n;
  data

let build_astep ~platform ~l2b ~prog ~accel_name ~(s : S.t) ~ins ~out
    ~weights_offset ~bias_offset =
  let accel = Arch.Platform.find_accel platform accel_name in
  let l = s.S.layer in
  let l1_size = platform.Arch.Platform.l1.Arch.Memory.size_bytes in
  let fail_step e =
    { a_insts = [||]; a_counters = Counters.create (); a_tpl = [||]; a_fail = Some e }
  in
  (* Same checks, in the same order, as the slow path performs per run. *)
  let arity_ok =
    match (l.L.kind, ins) with
    | L.Add, [ _; _ ] | (L.Conv _ | L.Dense | L.Pool _), [ _ ] -> true
    | _ -> false
  in
  if not arity_ok then
    fail_step (Invalid_argument "Exec_accel.run: wrong number of input buffers")
  else if l.L.weights <> None && weights_offset < 0 then
    fail_step
      (Invalid_argument "Exec_accel.run: layer has weights but no weight buffer")
  else begin
    let layout = Exec_accel.layout_of s in
    if
      layout.Exec_accel.slots
      * (layout.Exec_accel.in_size + layout.Exec_accel.out_size)
      > l1_size
    then fail_step (Mem.Fault "L1 scratch exceeds L1 size")
    else begin
      match (l.L.kind, l.L.weights) with
      | L.Conv _, None ->
          fail_step (Invalid_argument "Layer.execute: conv without weights")
      | L.Dense, None ->
          fail_step (Invalid_argument "Layer.execute: dense without weights")
      | _ when (match l.L.shift with Some sft -> sft < 0 | None -> false) ->
          fail_step (Invalid_argument "requantize: negative shift")
      | _ when l.L.bias <> None && bias_offset < 0 ->
          (* The slow path would fault reading the bias slice at a negative
             offset; keep the fast path loud rather than silently skipping
             the bias. *)
          fail_step (Mem.Fault "L2: bias buffer offset out of range")
      | _ ->
          let dma = platform.Arch.Platform.dma in
          let in_offsets =
            List.map (fun id -> (P.buffer prog id).P.l2_offset) ins
          in
          let out_offset = (P.buffer prog out).P.l2_offset in
          let wdata, per_k_elems =
            match l.L.weights with
            | Some w -> (decode_tensor l2b weights_offset w, Tensor.numel w / Tensor.dim w 0)
            | None -> ([||], 0)
          in
          let bdata =
            match l.L.bias with
            | Some b -> Some (decode_tensor l2b bias_offset b)
            | None -> None
          in
          let dw = L.is_depthwise l in
          let elt_in = Dtype.sim_bytes l.L.in_dtype in
          let elt_out = Dtype.sim_bytes l.L.out_dtype in
          let insts = Array.of_list s.S.instances in
          let n = Array.length insts in
          let din = Array.make n 0
          and wls = Array.make n 0
          and ccs = Array.make n 0
          and dout = Array.make n 0
          and bin = Array.make n 0
          and bout = Array.make n 0 in
          let make_epilogue ~k ~oh ~ow ~k0 =
            let pool, oy, ox =
              match l.L.fused_pool with
              | None -> (None, oh, ow)
              | Some { Ir.Op.pool = pwy, pwx; pool_stride = psy, psx } ->
                  ( Some (pwy, pwx, psy, psx, oh, ow),
                    ((oh - pwy) / psy) + 1,
                    ((ow - pwx) / psx) + 1 )
            in
            {
              ep_k = k;
              ep_spatial = oh * ow;
              ep_bias = bdata;
              ep_bias_off = k0;
              ep_shift = l.L.shift;
              ep_relu = l.L.relu;
              ep_out_dtype = l.L.out_dtype;
              ep_pool = pool;
              ep_oy = oy;
              ep_ox = ox;
            }
          in
          let plan_insts =
            Array.mapi
              (fun i (inst : S.instance) ->
                let d = inst.S.dims in
                let in_off = Exec_accel.in_base layout i in
                let out_off = Exec_accel.out_base layout i in
                (* Input DMA geometry, mirroring [Exec_accel.dma_in]. *)
                let in_acc = ref [] in
                let chunks_in, bytes_in =
                  match l.L.kind with
                  | L.Dense ->
                      let bytes = d.Tile.c * elt_in in
                      in_acc := [ (List.hd in_offsets, in_off, bytes) ];
                      (1, bytes)
                  | L.Conv _ | L.Pool _ ->
                      let chans, rows, cols = S.input_slice_dims s inst in
                      let ch0 = if dw then inst.S.k0 else 0 in
                      window_blits ~to_l1:true ~elt_bytes:elt_in
                        ~l2_off:(List.hd in_offsets) ~l1_off:in_off
                        ~full_h:l.L.in_shape.(1) ~full_w:l.L.in_shape.(2) ~ch0
                        ~y0:inst.S.iy0 ~x0:inst.S.ix0 ~chans ~rows ~cols in_acc
                  | L.Add ->
                      let chans = d.Tile.c
                      and rows = d.Tile.oy
                      and cols = d.Tile.ox in
                      let slab_bytes = chans * rows * cols * elt_in in
                      List.fold_left
                        (fun (c, b) (which, off) ->
                          let c', b' =
                            window_blits ~to_l1:true ~elt_bytes:elt_in ~l2_off:off
                              ~l1_off:(in_off + (which * slab_bytes))
                              ~full_h:l.L.in_shape.(1) ~full_w:l.L.in_shape.(2)
                              ~ch0:0 ~y0:inst.S.oy0 ~x0:0 ~chans ~rows ~cols
                              in_acc
                          in
                          (c + c', b + b'))
                        (0, 0)
                        (List.mapi (fun which off -> (which, off)) in_offsets)
                in
                (* Output DMA geometry, mirroring [Exec_accel.dma_out]. *)
                let out_acc = ref [] in
                let chunks_out, bytes_out =
                  match l.L.kind with
                  | L.Dense ->
                      let bytes = d.Tile.k * elt_out in
                      out_acc :=
                        [ (out_off, out_offset + (inst.S.k0 * elt_out), bytes) ];
                      (1, bytes)
                  | L.Conv _ | L.Pool _ | L.Add ->
                      window_blits ~to_l1:false ~elt_bytes:elt_out
                        ~l2_off:out_offset ~l1_off:out_off
                        ~full_h:l.L.out_shape.(1) ~full_w:l.L.out_shape.(2)
                        ~ch0:inst.S.k0 ~y0:inst.S.oy0 ~x0:inst.S.ox0
                        ~chans:d.Tile.k ~rows:d.Tile.oy ~cols:d.Tile.ox out_acc
                in
                din.(i) <-
                  Arch.Memory.transfer_cycles dma ~chunks:chunks_in ~bytes:bytes_in;
                bin.(i) <- bytes_in;
                wls.(i) <-
                  (if inst.S.load_weights then
                     accel.Arch.Accel.weight_load_cycles l d
                   else 0);
                ccs.(i) <- accel.Arch.Accel.compute_cycles l d;
                dout.(i) <-
                  Arch.Memory.transfer_cycles dma ~chunks:chunks_out
                    ~bytes:bytes_out;
                bout.(i) <- bytes_out;
                (* Compute descriptor + scratch sizing. *)
                let compute, scr =
                  match l.L.kind with
                  | L.Conv p ->
                      let chans, rows, cols = S.input_slice_dims s inst in
                      let ph = inst.S.pad_top + rows + inst.S.pad_bottom in
                      let pw = inst.S.pad_left + cols + inst.S.pad_right in
                      let w = Option.get l.L.weights in
                      let cg = Tensor.dim w 1 in
                      let fy = Tensor.dim w 2 and fx = Tensor.dim w 3 in
                      let sy, sx = p.K.stride in
                      let groups = if dw then d.Tile.k else p.K.groups in
                      let oh, ow =
                        K.conv_out_dims ~in_dims:(ph, pw) ~kernel:(fy, fx)
                          { p with K.padding = (0, 0) }
                      in
                      let ep = make_epilogue ~k:d.Tile.k ~oh ~ow ~k0:inst.S.k0 in
                      ( CConv
                          {
                            cv_chans = chans;
                            cv_h = ph;
                            cv_w = pw;
                            cv_rows = rows;
                            cv_cols = cols;
                            cv_pt = inst.S.pad_top;
                            cv_pl = inst.S.pad_left;
                            cv_k = d.Tile.k;
                            cv_cg = cg;
                            cv_fy = fy;
                            cv_fx = fx;
                            cv_sy = sy;
                            cv_sx = sx;
                            cv_groups = groups;
                            cv_oh = oh;
                            cv_ow = ow;
                            cv_wdata = wdata;
                            cv_woff = inst.S.k0 * per_k_elems;
                            cv_in_dtype = l.L.in_dtype;
                            cv_ep = ep;
                          },
                        {
                          ss_pin = chans * ph * pw;
                          ss_acc = d.Tile.k * oh * ow;
                          ss_out = d.Tile.k * ep.ep_oy * ep.ep_ox;
                          ss_tensor = None;
                        } )
                  | L.Dense ->
                      let ep = make_epilogue ~k:d.Tile.k ~oh:1 ~ow:1 ~k0:inst.S.k0 in
                      ( CDense
                          {
                            dn_c = d.Tile.c;
                            dn_k = d.Tile.k;
                            dn_wdata = wdata;
                            dn_woff = inst.S.k0 * per_k_elems;
                            dn_in_dtype = l.L.in_dtype;
                            dn_ep = ep;
                          },
                        {
                          ss_pin = d.Tile.c;
                          ss_acc = d.Tile.k;
                          ss_out = d.Tile.k;
                          ss_tensor = None;
                        } )
                  | L.Add ->
                      let chans = d.Tile.c
                      and rows = d.Tile.oy
                      and cols = d.Tile.ox in
                      let slab = chans * rows * cols in
                      let ep =
                        make_epilogue ~k:chans ~oh:rows ~ow:cols ~k0:inst.S.k0
                      in
                      ( CAdd { ad_n = slab; ad_in_dtype = l.L.in_dtype; ad_ep = ep },
                        {
                          ss_pin = 2 * slab;
                          ss_acc = slab;
                          ss_out = slab;
                          ss_tensor = None;
                        } )
                  | L.Pool _ ->
                      let chans, rows, cols = S.input_slice_dims s inst in
                      let ph = inst.S.pad_top + rows + inst.S.pad_bottom in
                      let pw = inst.S.pad_left + cols + inst.S.pad_right in
                      let sliced =
                        {
                          l with
                          L.in_shape = [| chans; ph; pw |];
                          out_shape = [| d.Tile.k; d.Tile.oy; d.Tile.ox |];
                        }
                      in
                      ( CPool
                          {
                            pl_layer = sliced;
                            pl_chans = chans;
                            pl_rows = rows;
                            pl_cols = cols;
                            pl_h = ph;
                            pl_w = pw;
                            pl_pt = inst.S.pad_top;
                            pl_pl = inst.S.pad_left;
                            pl_in_dtype = l.L.in_dtype;
                          },
                        {
                          ss_pin = 0;
                          ss_acc = 0;
                          ss_out = 0;
                          ss_tensor = Some (l.L.in_dtype, [| chans; ph; pw |]);
                        } )
                in
                let out_len =
                  match compute with
                  | CConv { cv_ep = ep; cv_k = k; _ } -> k * ep.ep_oy * ep.ep_ox
                  | CDense { dn_k; _ } -> dn_k
                  | CAdd { ad_n; _ } -> ad_n
                  | CPool _ -> 0 (* encoded from the executed tensor directly *)
                in
                {
                  i_in_blits = pack_blits (List.rev !in_acc);
                  i_out_blits = pack_blits (List.rev !out_acc);
                  i_in_off = in_off;
                  i_out_off = out_off;
                  i_out_dtype = l.L.out_dtype;
                  i_out_len = out_len;
                  i_compute = compute;
                  i_scr = scr;
                })
              insts
          in
          (* Counters template + trace timeline, exactly as the slow path
             derives them from the per-tile cost arrays. *)
          let overhead =
            accel.Arch.Accel.setup_cycles + (n * accel.Arch.Accel.tile_overhead_cycles)
          in
          let c = Counters.create () in
          Array.iteri
            (fun i _ ->
              c.Counters.accel_compute <- c.Counters.accel_compute + ccs.(i);
              c.Counters.weight_load <- c.Counters.weight_load + wls.(i);
              c.Counters.dma_in <- c.Counters.dma_in + din.(i);
              c.Counters.dma_out <- c.Counters.dma_out + dout.(i);
              c.Counters.dma_bytes_in <- c.Counters.dma_bytes_in + bin.(i);
              c.Counters.dma_bytes_out <- c.Counters.dma_bytes_out + bout.(i))
            insts;
          c.Counters.host_overhead <- overhead;
          let tpl = ref [] in
          let emit ~track ~ts ~dur ~args name =
            if dur > 0 then
              tpl :=
                { tv_track = track; tv_ts = ts; tv_dur = dur; tv_args = args; tv_name = name }
                :: !tpl
          in
          let wall =
            Exec_accel.timeline ~double_buffer:s.S.double_buffer
              ~engine:accel.Arch.Accel.accel_name ~overhead ~t0:0 ~din ~wls ~ccs
              ~dout ~bin ~bout ~emit
          in
          c.Counters.stall <-
            max 0
              (wall - overhead - c.Counters.accel_compute - c.Counters.weight_load);
          c.Counters.wall <- wall;
          {
            a_insts = plan_insts;
            a_counters = c;
            a_tpl = Array.of_list (List.rev !tpl);
            a_fail = None;
          }
    end
  end

let build ~platform (prog : P.t) =
  (match P.validate prog with
  | Ok () -> ()
  | Error e -> invalid_arg ("Plan.build: invalid program: " ^ e));
  let l2_size = platform.Arch.Platform.l2.Arch.Memory.size_bytes in
  let l1_size = platform.Arch.Platform.l1.Arch.Memory.size_bytes in
  let l2b = Mem.create "L2" l2_size in
  List.iter (fun (off, t) -> Mem.write_tensor l2b off t) prog.P.weight_images;
  let p_steps =
    Array.of_list
      (List.map
         (function
           | P.Cpu _ -> None
           | P.Accel { accel_name; schedule; ins; out; weights_offset; bias_offset }
             ->
               Some
                 (build_astep ~platform ~l2b ~prog ~accel_name ~s:schedule ~ins
                    ~out ~weights_offset ~bias_offset))
         prog.P.steps)
  in
  let tiles =
    Array.fold_left
      (fun n -> function Some a -> n + Array.length a.a_insts | None -> n)
      0 p_steps
  in
  let scratch_words =
    Array.fold_left
      (fun n -> function
        | None -> n
        | Some a ->
            Array.fold_left
              (fun n i ->
                n + i.i_scr.ss_pin + i.i_scr.ss_acc + i.i_scr.ss_out
                + (match i.i_scr.ss_tensor with
                  | Some (_, shape) -> Array.fold_left ( * ) 1 shape
                  | None -> 0))
              n a.a_insts)
      0 p_steps
  in
  {
    p_prog = prog;
    p_steps;
    p_l2_image = Mem.image l2b;
    p_l2_hwm = Mem.high_water l2b;
    p_l1_size = l1_size;
    p_l2_size = l2_size;
    p_arena = Domain.DLS.new_key (fun () -> ref None);
    p_tiles = tiles;
    p_scratch_words = scratch_words;
  }

(* --- Arenas -------------------------------------------------------------- *)

let alloc_arena plan =
  let ar_l2 = Mem.create "L2" plan.p_l2_size in
  let ar_l1 = Mem.create "L1" plan.p_l1_size in
  let ar_scratch =
    Array.map
      (function
        | None -> [||]
        | Some a ->
            Array.map
              (fun i ->
                {
                  sc_pin = Array.make i.i_scr.ss_pin 0;
                  sc_acc = Array.make i.i_scr.ss_acc 0;
                  sc_out = Array.make i.i_scr.ss_out 0;
                  sc_tensor =
                    Option.map
                      (fun (dt, shape) -> Tensor.create dt shape)
                      i.i_scr.ss_tensor;
                })
              a.a_insts)
      plan.p_steps
  in
  { ar_l2; ar_l1; ar_scratch }

let arena plan ~fresh =
  let slot = Domain.DLS.get plan.p_arena in
  match !slot with
  | Some ar when not fresh -> ar
  | _ ->
      let ar = alloc_arena plan in
      slot := Some ar;
      ar

let checkout ?(fresh = false) plan =
  let ar = arena plan ~fresh in
  (* Rewind to the exact state [Machine.run] would build from scratch: a
     zeroed L2 holding the weight images (with its post-load high-water
     mark) and a poisoned L1. *)
  Mem.restore ar.ar_l2 plan.p_l2_image ~hwm:plan.p_l2_hwm;
  Mem.fill ar.ar_l1 0x5A;
  Mem.reset_high_water ar.ar_l1;
  (ar.ar_l2, ar.ar_l1)

(* --- Per-request execution ----------------------------------------------- *)

let copy_counters c =
  let r = Counters.create () in
  Counters.add r c;
  r

let exec_compute ~l1 inst scr =
  match inst.i_compute with
  | CConv cv ->
      fill_padded ~l1 ~dtype:cv.cv_in_dtype ~l1_off:inst.i_in_off ~dst:scr.sc_pin
        ~chans:cv.cv_chans ~rows:cv.cv_rows ~cols:cv.cv_cols ~ph:cv.cv_h
        ~pw:cv.cv_w ~pt:cv.cv_pt ~pl:cv.cv_pl;
      conv_kernel ~cv_h:cv.cv_h ~cv_w:cv.cv_w ~cv_k:cv.cv_k ~cv_cg:cv.cv_cg
        ~cv_fy:cv.cv_fy ~cv_fx:cv.cv_fx ~cv_sy:cv.cv_sy ~cv_sx:cv.cv_sx
        ~cv_groups:cv.cv_groups ~cv_oh:cv.cv_oh ~cv_ow:cv.cv_ow ~wdata:cv.cv_wdata
        ~woff:cv.cv_woff ~chw:(cv.cv_h * cv.cv_w) scr.sc_pin scr.sc_acc;
      run_epilogue cv.cv_ep scr.sc_acc scr.sc_out;
      Mem.write_flat_from l1 inst.i_out_dtype inst.i_out_off scr.sc_out ~pos:0
        ~len:inst.i_out_len
  | CDense dn ->
      Mem.read_flat_into l1 dn.dn_in_dtype inst.i_in_off scr.sc_pin ~pos:0
        ~len:dn.dn_c;
      dense_kernel ~dn_c:dn.dn_c ~dn_k:dn.dn_k ~wdata:dn.dn_wdata ~woff:dn.dn_woff
        scr.sc_pin scr.sc_acc;
      run_epilogue dn.dn_ep scr.sc_acc scr.sc_out;
      Mem.write_flat_from l1 inst.i_out_dtype inst.i_out_off scr.sc_out ~pos:0
        ~len:inst.i_out_len
  | CAdd ad ->
      Mem.read_flat_into l1 ad.ad_in_dtype inst.i_in_off scr.sc_pin ~pos:0
        ~len:(2 * ad.ad_n);
      let pin = scr.sc_pin and acc = scr.sc_acc in
      for i = 0 to ad.ad_n - 1 do
        Array.unsafe_set acc i
          (Array.unsafe_get pin i + Array.unsafe_get pin (ad.ad_n + i))
      done;
      run_epilogue ad.ad_ep acc scr.sc_out;
      Mem.write_flat_from l1 inst.i_out_dtype inst.i_out_off scr.sc_out ~pos:0
        ~len:inst.i_out_len
  | CPool pl ->
      let input = Option.get scr.sc_tensor in
      fill_padded ~l1 ~dtype:pl.pl_in_dtype ~l1_off:inst.i_in_off
        ~dst:(Tensor.unsafe_data input) ~chans:pl.pl_chans ~rows:pl.pl_rows
        ~cols:pl.pl_cols ~ph:pl.pl_h ~pw:pl.pl_w ~pt:pl.pl_pt ~pl:pl.pl_pl;
      let out = L.execute pl.pl_layer input in
      Mem.write_flat_from l1 inst.i_out_dtype inst.i_out_off
        (Tensor.unsafe_data out) ~pos:0 ~len:(Tensor.numel out)

let run_accel_step plan ~step_index ~l2 ~l1 ?trace ~t0 () =
  let a =
    match plan.p_steps.(step_index) with
    | Some a -> a
    | None -> invalid_arg "Plan.run_accel_step: step is not an accelerator step"
  in
  (match a.a_fail with Some e -> raise e | None -> ());
  let scratch = (arena plan ~fresh:false).ar_scratch.(step_index) in
  Array.iteri
    (fun i inst ->
      replay_blits ~src:l2 ~dst:l1 inst.i_in_blits;
      exec_compute ~l1 inst scratch.(i);
      replay_blits ~src:l1 ~dst:l2 inst.i_out_blits)
    a.a_insts;
  if Trace.enabled trace then
    Array.iter
      (fun tv ->
        Trace.interval trace ~track:tv.tv_track ~ts:(t0 + tv.tv_ts) ~dur:tv.tv_dur
          ~args:tv.tv_args tv.tv_name)
      a.a_tpl;
  copy_counters a.a_counters
