(** Executor for depth-first fused convolution pairs ({!Dory.Chain}).

    Streams full-width stripes: DMA an input window into L1, run the first
    convolution (halo rows recomputed per stripe), keep the intermediate
    stripe in L1 only, run the second convolution, DMA the final stripe
    back to L2. The intermediate tensor never exists in L2. Bit-exact
    against the sequential execution of the two layers. *)

type buffers = {
  in_offset : int;   (** L2 offset of the pair's input *)
  out_offset : int;  (** L2 offset of the pair's final output *)
  w1_offset : int;
  b1_offset : int;   (** -1 when the first layer has no bias *)
  w2_offset : int;
  b2_offset : int;
}

val run :
  platform:Arch.Platform.t ->
  accel:Arch.Accel.t ->
  l2:Mem.t ->
  l1:Mem.t ->
  buffers:buffers ->
  ?trace:Trace.t ->
  ?t0:int ->
  ?faults:Fault.Session.t ->
  ?retry_budget:int ->
  Dory.Chain.t ->
  Counters.t
(** When [trace] is given, per-stripe DMA/compute intervals are recorded
    on the simulated clock starting at cycle [t0]. When [faults] is
    given, the pair's weight load and each stripe's transfers/computes
    consult the plan exactly as in {!Exec_accel.run}.
    @raise Fault.Session.Unrecovered past the retry budget.
    @raise Mem.Fault on out-of-bounds plans. *)
