(** Executor for depth-first fused convolution pairs ({!Dory.Chain}).

    Streams full-width stripes: DMA an input window into L1, run the first
    convolution (halo rows recomputed per stripe), keep the intermediate
    stripe in L1 only, run the second convolution, DMA the final stripe
    back to L2. The intermediate tensor never exists in L2. Bit-exact
    against the sequential execution of the two layers. *)

type buffers = {
  in_offset : int;   (** L2 offset of the pair's input *)
  out_offset : int;  (** L2 offset of the pair's final output *)
  w1_offset : int;
  b1_offset : int;   (** -1 when the first layer has no bias *)
  w2_offset : int;
  b2_offset : int;
}

type prep
(** Per-chain reusable state: the pair's weight/bias tensors decoded once
    from L2 plus a shape-keyed cache of stripe scratch tensors, reset
    ({!Tensor.reset}) instead of reallocated on every stripe. Byte-identity
    holds because weights never change between fault-free requests and every
    scratch interior is fully rewritten after the reset. *)

val prepare : l2:Mem.t -> buffers:buffers -> Dory.Chain.t -> prep
(** Decode the pair's weights and biases from [l2] once; subsequent
    [run ~prep] calls skip those reads and reuse stripe scratch. *)

val run :
  platform:Arch.Platform.t ->
  accel:Arch.Accel.t ->
  l2:Mem.t ->
  l1:Mem.t ->
  buffers:buffers ->
  ?trace:Trace.t ->
  ?t0:int ->
  ?faults:Fault.Session.t ->
  ?retry_budget:int ->
  ?prep:prep ->
  Dory.Chain.t ->
  Counters.t
(** When [trace] is given, per-stripe DMA/compute intervals are recorded
    on the simulated clock starting at cycle [t0]. When [faults] is
    given, the pair's weight load and each stripe's transfers/computes
    consult the plan exactly as in {!Exec_accel.run}. When [prep] is given
    (it must come from {!prepare} on this very chain, physical equality),
    weight reads and stripe scratch allocation are skipped in favour of the
    prep's cached state — outputs and counters stay byte-identical.
    @raise Invalid_argument when [prep] is combined with [faults] (the
    slow path stays the fault-injection oracle) or belongs to another
    chain.
    @raise Fault.Session.Unrecovered past the retry budget.
    @raise Mem.Fault on out-of-bounds plans. *)
