module P = Program

type report = {
  per_step : (string * Counters.t) list;
  totals : Counters.t;
}

let accel_steps_peak r =
  List.fold_left
    (fun acc (name, c) ->
      if String.contains name ':' then acc + Counters.peak c else acc)
    0 r.per_step

let read_buffer l2 (b : P.buffer) = Mem.read_tensor l2 b.P.l2_offset b.P.b_dtype b.P.b_shape

let write_buffer l2 (b : P.buffer) tensor =
  if Tensor.shape tensor <> b.P.b_shape
     || not (Tensor.Dtype.equal (Tensor.dtype tensor) b.P.b_dtype)
  then
    invalid_arg
      (Printf.sprintf "Machine: tensor %s does not fit buffer %d" (Tensor.to_string tensor)
         b.P.buf_id);
  Mem.write_tensor l2 b.P.l2_offset tensor

(* Functional execution of a fused CPU kernel: external inputs come from L2
   buffers, constants from the graph, intermediates stay in registers, the
   last node's value is written back to L2. *)
let run_cpu_step ~l2 ~(prog : P.t) ~nodes ~ins ~out =
  let values = Hashtbl.create 16 in
  let lookup id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None -> (
        match List.assoc_opt id ins with
        | Some buf -> read_buffer l2 (P.buffer prog buf)
        | None -> (
            match Ir.Graph.node prog.P.graph id with
            | Ir.Graph.Const t -> t
            | Ir.Graph.Input _ | Ir.Graph.App _ ->
                invalid_arg
                  (Printf.sprintf "Machine: node %%%d used before being computed" id)))
  in
  let last = ref None in
  List.iter
    (fun id ->
      match Ir.Graph.node prog.P.graph id with
      | Ir.Graph.App { op; args } ->
          let v = Ir.Eval.eval_op op (List.map lookup args) in
          Hashtbl.replace values id v;
          last := Some v
      | Ir.Graph.Input _ | Ir.Graph.Const _ ->
          invalid_arg "Machine: CPU kernel may only contain operator nodes")
    nodes;
  match !last with
  | Some v -> write_buffer l2 (P.buffer prog out) v
  | None -> invalid_arg "Machine: empty CPU kernel"

let run ~platform ?trace ?faults ?(retry_budget = 3) ?plan
    ?(plan_fresh_arena = false) (prog : P.t) ~inputs =
  (match P.validate prog with
  | Ok () -> ()
  | Error e -> invalid_arg ("Machine: invalid program: " ^ e));
  (* The compiled plan is only sound fault-free: fault injection mutates
     memory and timing per request, which is exactly what a plan
     precomputes away. With a fault session active the slow path runs and
     stays the oracle. *)
  let plan =
    match (plan, faults) with
    | Some p, None ->
        if not (Plan.program p == prog) then
          invalid_arg "Machine: plan was built for a different program";
        Some p
    | _ -> None
  in
  let l2, l1 =
    match plan with
    | Some p -> Plan.checkout ~fresh:plan_fresh_arena p
    | None ->
        let l2 = Mem.create "L2" platform.Arch.Platform.l2.Arch.Memory.size_bytes in
        let l1 = Mem.create "L1" platform.Arch.Platform.l1.Arch.Memory.size_bytes in
        (* Poison both memories so reads of never-written bytes surface as
           wrong results in the differential tests rather than convenient
           zeros. *)
        Mem.fill l1 0x5A;
        List.iter (fun (off, t) -> Mem.write_tensor l2 off t) prog.P.weight_images;
        (l2, l1)
  in
  List.iter
    (fun (name, buf) ->
      match List.assoc_opt name inputs with
      | Some t -> write_buffer l2 (P.buffer prog buf) t
      | None -> invalid_arg ("Machine: missing input " ^ name))
    prog.P.input_buffers;
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (n, _) -> n = name) prog.P.input_buffers) then
        invalid_arg ("Machine: unknown input " ^ name))
    inputs;
  let totals = Counters.create () in
  let on = Trace.enabled trace in
  let clock = ref 0 in
  let per_step =
    List.mapi
      (fun step_index step ->
        (* Ambient bit rot: once per step and memory, before the step
           runs, the plan may flip bits in the occupied region or stall
           the bus. Drawn L2-first for determinism. *)
        let rot_c = Counters.create () in
        let rot = Resilience.make ?faults ~retry_budget rot_c in
        Resilience.mem_rot rot ~site:Fault.Plan.L2 ~mem:l2;
        Resilience.mem_rot rot ~site:Fault.Plan.L1 ~mem:l1;
        let c =
          match step with
          | P.Accel { accel_name; schedule; ins; out; weights_offset; bias_offset } -> (
              match plan with
              | Some p ->
                  Plan.run_accel_step p ~step_index ~l2 ~l1 ?trace ~t0:!clock ()
              | None ->
                  let accel = Arch.Platform.find_accel platform accel_name in
                  let buffers =
                    {
                      Exec_accel.in_offsets =
                        List.map (fun id -> (P.buffer prog id).P.l2_offset) ins;
                      out_offset = (P.buffer prog out).P.l2_offset;
                      weights_offset;
                      bias_offset;
                    }
                  in
                  Exec_accel.run ~platform ~accel ~l2 ~l1 ~buffers ?trace
                    ~t0:!clock ?faults ~retry_budget schedule)
          | P.Cpu { kernel_name; nodes; ins; out; cycles } ->
              run_cpu_step ~l2 ~prog ~nodes ~ins ~out;
              let c = Counters.create () in
              c.Counters.cpu_compute <- cycles;
              c.Counters.wall <- cycles;
              if on && cycles > 0 then
                Trace.interval trace ~track:"host" ~ts:!clock ~dur:cycles kernel_name;
              c
        in
        c.Counters.faults_silent <-
          c.Counters.faults_silent + rot_c.Counters.faults_silent;
        c.Counters.fault_stall <-
          c.Counters.fault_stall + rot_c.Counters.fault_stall;
        c.Counters.wall <- c.Counters.wall + rot_c.Counters.fault_stall;
        Resilience.emit_events rot trace ~ts:!clock;
        Counters.add totals c;
        if on then begin
          (* One interval per step on its own track: summed durations here
             equal [totals.wall] exactly. *)
          Trace.interval trace ~track:"steps" ~ts:!clock ~dur:c.Counters.wall
            ~args:
              [
                ("dma_bytes_in", Trace.Json.Int c.Counters.dma_bytes_in);
                ("dma_bytes_out", Trace.Json.Int c.Counters.dma_bytes_out);
                ("stall", Trace.Json.Int c.Counters.stall);
              ]
            (P.step_name step);
          let at = !clock + c.Counters.wall in
          Trace.counter trace ~track:"mem" ~ts:at ~value:(Mem.high_water l2)
            "L2 high-water (B)";
          Trace.counter trace ~track:"mem" ~ts:at ~value:(Mem.high_water l1)
            "L1 high-water (B)"
        end;
        clock := !clock + c.Counters.wall;
        (P.step_name step, c))
      prog.P.steps
  in
  let output = read_buffer l2 (P.buffer prog prog.P.output_buffer) in
  (output, { per_step; totals })
