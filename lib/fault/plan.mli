(** Deterministic fault-injection plans.

    A plan describes an injection campaign as a list of rules, each a
    {e site} (which hardware mechanism to break), a {e trigger} (on which
    occurrences of that site the rule fires) and a {e kind} (what
    happens). Plans are pure data with a stable textual form, so a
    campaign is fully described by one string and replays byte-for-byte:
    all randomness (bit positions, [Prob] draws) comes from a SplitMix64
    stream seeded by [seed] inside the runtime {!Session}.

    Spec grammar (comma/whitespace-separated elements, [#] comments):
    {v
    seed=42,dma_in@every=5:drop,l2@nth=3:flip=2,compute(diana_analog)@p=0.1:stall=200
    v}
    - sites: [dma_in], [dma_out], [wload], [compute], [compute(NAME)],
      [l1], [l2]
    - triggers: [always], [nth=K] (the K-th occurrence only), [every=N]
      (every N-th occurrence), [p=F] (per-occurrence Bernoulli)
    - kinds: [flip] / [flip=N] (N bit-flips), [drop] (transfer/compute
      failure), [stall=C] (C extra cycles)

    Detection semantics (modeled by the simulator, see DESIGN.md): DMA
    and weight-load payloads are checksummed, so [flip]/[drop] there are
    {e detected} and retried; [drop] on a compute site is a watchdog
    timeout, also detected and retried. [flip] on [l1]/[l2] (bit rot in
    the occupied region) and on compute sites (a wrong output tile) is
    {e silent}: nothing in the modeled runtime can see it. *)

type site =
  | Dma_in  (** an L2 -> L1 activation transfer *)
  | Dma_out  (** an L1 -> L2 writeback *)
  | Weight_load  (** a weight-memory fill *)
  | Compute of string option
      (** a tile computation; [Some name] restricts to one engine *)
  | L1  (** bit rot in occupied L1, sampled once per program step *)
  | L2  (** bit rot in occupied L2, sampled once per program step *)

type trigger = Always | Nth of int | Every of int | Prob of float
type kind = Flip of int | Drop | Stall of int
type rule = { site : site; trigger : trigger; kind : kind }
type t = { seed : int; rules : rule list }

val empty : t
(** No rules: injection disabled. Threading [empty] through the
    simulator is a strict no-op (identical cycles, digests and trace
    event counts) — asserted by the test suite. *)

val is_empty : t -> bool

val site_matches : rule:site -> event:site -> bool
(** Does a rule site apply to a concrete event site? [Compute None]
    matches every engine. *)

val site_label : site -> string
(** Stable label, also used as the occurrence-counter key and in
    {!Session.Unrecovered} diagnostics. *)

val to_string : t -> string
(** Canonical spec string; [Plan.of_string (Plan.to_string p)] is [p].
    The empty plan renders as ["none"]. *)

val of_string : string -> (t, string) result
(** Parse a spec string (or fault file contents). [""] and ["none"]
    yield {!empty}. *)

val load : string -> (t, string) result
(** Read a fault file: same grammar, one or more rules per line. *)
