(* Runtime state of one injection campaign (see session.mli). *)

type stats = {
  mutable injected : int;
  mutable detected : int;
  mutable silent : int;
  mutable retries : int;
  mutable retry_cycles : int;
  mutable stall_cycles : int;
}

type t = {
  plan : Plan.t;
  rng : Util.Rng.t;
  occ : (string, int) Hashtbl.t;
  stats : stats;
}

exception
  Unrecovered of {
    site : string;
    attempts : int;
  }

let () =
  Printexc.register_printer (function
    | Unrecovered { site; attempts } ->
        Some
          (Printf.sprintf "fault not recovered at %s after %d attempt(s)" site
             attempts)
    | _ -> None)

let create plan =
  {
    plan;
    rng = Util.Rng.create (plan.Plan.seed lxor 0x0fa1_75ed);
    occ = Hashtbl.create 8;
    stats =
      {
        injected = 0;
        detected = 0;
        silent = 0;
        retries = 0;
        retry_cycles = 0;
        stall_cycles = 0;
      };
  }

let plan t = t.plan
let active t = not (Plan.is_empty t.plan)
let stats t = t.stats

(* Canonical field enumeration for exporters; order matches the record. *)
let stats_fields s =
  [
    ("injected", s.injected);
    ("detected", s.detected);
    ("silent", s.silent);
    ("retries", s.retries);
    ("retry_cycles", s.retry_cycles);
    ("stall_cycles", s.stall_cycles);
  ]

(* Uniform float in [0, 1) from the top 53 bits of the stream. *)
let unit_float t =
  Int64.to_float (Int64.shift_right_logical (Util.Rng.next_int64 t.rng) 11)
  /. 9007199254740992.0

let rand_int t bound = if bound <= 0 then 0 else Util.Rng.int t.rng bound

let draw t site =
  if not (active t) then []
  else begin
    let key = Plan.site_label site in
    let occ = 1 + Option.value ~default:0 (Hashtbl.find_opt t.occ key) in
    Hashtbl.replace t.occ key occ;
    List.filter_map
      (fun (r : Plan.rule) ->
        if not (Plan.site_matches ~rule:r.Plan.site ~event:site) then None
        else
          let fires =
            match r.Plan.trigger with
            | Plan.Always -> true
            | Plan.Nth n -> occ = n
            | Plan.Every n -> occ mod n = 0
            | Plan.Prob p -> unit_float t < p
          in
          if fires then begin
            t.stats.injected <- t.stats.injected + 1;
            Some r.Plan.kind
          end
          else None)
      t.plan.Plan.rules
  end

let note_detected t = t.stats.detected <- t.stats.detected + 1
let note_silent t = t.stats.silent <- t.stats.silent + 1

let note_retry t ~cycles =
  t.stats.retries <- t.stats.retries + 1;
  t.stats.retry_cycles <- t.stats.retry_cycles + cycles

let note_stall t ~cycles = t.stats.stall_cycles <- t.stats.stall_cycles + cycles

(* Bounded exponential backoff: base, 2*base, 4*base, ... capped at
   [cap]. The shift is guarded so absurd attempt counts saturate at the
   cap instead of overflowing the shift. *)
let backoff_with ~base ~cap attempt =
  let base = max 1 base and cap = max 1 cap in
  let shift = max 0 (attempt - 1) in
  if shift >= Sys.int_size - 2 then cap else min cap (base lsl shift)

(* Retry backoff charged before re-issuing an operation: 8, 16, 32, ...
   cycles, capped at 256. Documented in DESIGN.md; the retry-accounting
   tests recompute this closed form. *)
let backoff attempt = backoff_with ~base:8 ~cap:256 attempt
