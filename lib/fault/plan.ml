(* Fault plans: a deterministic description of what to break, where and
   when (see plan.mli). A plan is pure data; all randomness is deferred
   to the runtime {!Session}, seeded by [seed], so a plan string plus the
   event order of one simulation replays an injection campaign exactly. *)

type site =
  | Dma_in
  | Dma_out
  | Weight_load
  | Compute of string option
  | L1
  | L2

type trigger = Always | Nth of int | Every of int | Prob of float
type kind = Flip of int | Drop | Stall of int
type rule = { site : site; trigger : trigger; kind : kind }
type t = { seed : int; rules : rule list }

let empty = { seed = 0; rules = [] }
let is_empty t = t.rules = []

(* A rule's site matches a concrete event site. [Compute None] is the
   wildcard over engines; the other constructors match exactly. *)
let site_matches ~rule ~event =
  match (rule, event) with
  | Compute None, Compute _ -> true
  | Compute (Some a), Compute (Some b) -> a = b
  | (Dma_in | Dma_out | Weight_load | L1 | L2), _ -> rule = event
  | Compute _, _ -> false

let site_label = function
  | Dma_in -> "dma_in"
  | Dma_out -> "dma_out"
  | Weight_load -> "wload"
  | Compute None -> "compute"
  | Compute (Some a) -> Printf.sprintf "compute(%s)" a
  | L1 -> "l1"
  | L2 -> "l2"

let trigger_to_string = function
  | Always -> "always"
  | Nth n -> Printf.sprintf "nth=%d" n
  | Every n -> Printf.sprintf "every=%d" n
  | Prob p -> Printf.sprintf "p=%g" p

let kind_to_string = function
  | Flip 1 -> "flip"
  | Flip n -> Printf.sprintf "flip=%d" n
  | Drop -> "drop"
  | Stall c -> Printf.sprintf "stall=%d" c

let rule_to_string r =
  Printf.sprintf "%s@%s:%s" (site_label r.site) (trigger_to_string r.trigger)
    (kind_to_string r.kind)

let to_string t =
  if is_empty t then "none"
  else
    String.concat ","
      (Printf.sprintf "seed=%d" t.seed :: List.map rule_to_string t.rules)

(* --- parsing ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let parse_site s =
  match s with
  | "dma_in" -> Ok Dma_in
  | "dma_out" -> Ok Dma_out
  | "wload" -> Ok Weight_load
  | "compute" -> Ok (Compute None)
  | "l1" -> Ok L1
  | "l2" -> Ok L2
  | _ ->
      let n = String.length s in
      if n > 9 && String.sub s 0 8 = "compute(" && s.[n - 1] = ')' then
        Ok (Compute (Some (String.sub s 8 (n - 9))))
      else Error (Printf.sprintf "unknown fault site %S" s)

let pos_int_of ~what s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok n
  | _ -> Error (Printf.sprintf "%s wants a positive integer, got %S" what s)

let parse_trigger s =
  match String.index_opt s '=' with
  | None ->
      if s = "always" then Ok Always
      else Error (Printf.sprintf "unknown fault trigger %S" s)
  | Some i -> (
      let k = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
      match k with
      | "nth" ->
          let* n = pos_int_of ~what:"nth" v in
          Ok (Nth n)
      | "every" ->
          let* n = pos_int_of ~what:"every" v in
          Ok (Every n)
      | "p" -> (
          match float_of_string_opt v with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
          | _ -> Error (Printf.sprintf "p wants a probability in [0,1], got %S" v))
      | _ -> Error (Printf.sprintf "unknown fault trigger %S" s))

let parse_kind s =
  match String.index_opt s '=' with
  | None -> (
      match s with
      | "flip" -> Ok (Flip 1)
      | "drop" -> Ok Drop
      | _ -> Error (Printf.sprintf "unknown fault kind %S" s))
  | Some i -> (
      let k = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
      match k with
      | "flip" ->
          let* n = pos_int_of ~what:"flip" v in
          Ok (Flip n)
      | "stall" ->
          let* n = pos_int_of ~what:"stall" v in
          Ok (Stall n)
      | _ -> Error (Printf.sprintf "unknown fault kind %S" s))

let parse_rule s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "rule %S: expected site@trigger:kind" s)
  | Some at -> (
      let site_s = String.sub s 0 at in
      let rest = String.sub s (at + 1) (String.length s - at - 1) in
      match String.index_opt rest ':' with
      | None -> Error (Printf.sprintf "rule %S: expected site@trigger:kind" s)
      | Some colon ->
          let trig_s = String.sub rest 0 colon in
          let kind_s = String.sub rest (colon + 1) (String.length rest - colon - 1) in
          let* site = parse_site site_s in
          let* trigger = parse_trigger trig_s in
          let* kind = parse_kind kind_s in
          Ok { site; trigger; kind })

(* Elements are separated by commas or any whitespace (so one-rule-per-
   line fault files concatenate naturally); [#] starts a line comment. *)
let tokenize s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line)
  |> String.concat " "
  |> String.map (function ',' | '\t' | '\r' -> ' ' | c -> c)
  |> String.split_on_char ' '
  |> List.filter (fun tok -> tok <> "")

let of_string s =
  let toks = tokenize s in
  if toks = [] || toks = [ "none" ] then Ok empty
  else
    let rec go seed rules = function
      | [] -> Ok { seed; rules = List.rev rules }
      | tok :: rest ->
          if String.length tok > 5 && String.sub tok 0 5 = "seed=" then
            match int_of_string_opt (String.sub tok 5 (String.length tok - 5)) with
            | Some n -> go n rules rest
            | None -> Error (Printf.sprintf "bad fault seed %S" tok)
          else
            let* r = parse_rule tok in
            go seed (r :: rules) rest
    in
    go 0 [] toks

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e
