(** Runtime state of one fault-injection campaign.

    A session owns the plan's SplitMix64 stream and one occurrence
    counter per concrete site label. The simulator consults {!draw} at
    every injection point (each DMA transfer, weight load, tile compute
    and, once per program step, each memory); rules whose trigger fires
    on that occurrence return their kinds, in plan order. Because the
    simulator visits sites in a deterministic order, equal plans produce
    equal campaigns — at any [jobs] setting, since each simulated run
    owns its session exclusively.

    The session records what the campaign did ({!stats}); the simulator
    additionally accounts detection, retries and injected stalls into
    {!Sim.Counters} so reports and traces expose them per step. *)

type stats = {
  mutable injected : int;  (** rules fired *)
  mutable detected : int;  (** faults caught by checksum/watchdog *)
  mutable silent : int;  (** corruptions nothing in the runtime can see *)
  mutable retries : int;  (** re-issued operations *)
  mutable retry_cycles : int;  (** cycles spent re-issuing + backoff *)
  mutable stall_cycles : int;  (** cycles injected by [Stall] kinds *)
}

type t

exception
  Unrecovered of {
    site : string;  (** {!Plan.site_label} of the failing site *)
    attempts : int;  (** attempts made, including the original *)
  }
(** Raised by the simulator when a detected fault persists past the
    retry budget — the modeled runtime aborts the inference cleanly
    rather than returning corrupt data. *)

val create : Plan.t -> t
val plan : t -> Plan.t

val active : t -> bool
(** [false] for the empty plan: every {!draw} is then a no-op returning
    [[]] without touching counters or the stream. *)

val stats : t -> stats

val stats_fields : stats -> (string * int) list
(** Every stat as a (name, value) pair, in declaration order — the
    canonical enumeration metrics exporters iterate ([Fault] stays
    dependency-free; the metrics registry lives upstream). *)

val draw : t -> Plan.site -> Plan.kind list
(** Count one occurrence of [site] and return the kinds of every rule
    firing on it. Pass the concrete engine in [Compute (Some name)];
    wildcard [Compute None] rules match it. *)

val rand_int : t -> int -> int
(** Deterministic uniform draw in [[0, bound)] from the session stream
    (bit and byte positions for [Flip]); returns 0 when [bound <= 0]. *)

val note_detected : t -> unit
val note_silent : t -> unit
val note_retry : t -> cycles:int -> unit
val note_stall : t -> cycles:int -> unit

val backoff_with : base:int -> cap:int -> int -> int
(** [backoff_with ~base ~cap attempt] is the capped exponential back-off
    shape shared by retry delays and health-probation escalation:
    [min cap (base * 2^(attempt-1))] for the 1-based [attempt], with the
    shift guarded against overflow (huge attempts saturate at [cap]). *)

val backoff : int -> int
(** [backoff attempt] is the modeled back-off delay charged before
    re-issuing a failed operation: [backoff_with ~base:8 ~cap:256],
    i.e. [min 256 (8 * 2^(attempt-1))] cycles for the 1-based
    [attempt]. *)
