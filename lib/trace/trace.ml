(* Structured tracing for the compiler and the simulator.

   A [t] is a collecting sink: spans (compile-time phases, timed with a
   monotone process clock in microseconds), intervals (simulated-time
   engine activity, timestamped in cycles by the caller) and counter
   samples all land in one event list. Every entry point takes a
   [t option]; [None] is the null sink and every recording function is a
   no-op on it, so instrumented code paths cost nothing when tracing is
   off. Exporters turn the collected events into a Chrome trace-event
   JSON (loadable in Perfetto; one track per engine) or a compact text
   summary. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Shortest decimal form that parses back to the same float: most
     values fit %.12g; the rare ones that don't escalate to %.15g and
     finally %.17g, which is always exact for a binary64. *)
  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else if not (Float.is_finite f) then "null"
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s
      else
        let s = Printf.sprintf "%.15g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf
end

type kind = Span | Instant | Counter

type event = {
  ev_name : string;
  ev_cat : string;
  ev_track : string;
  ev_ts : int;   (* microseconds for compile spans, cycles for sim intervals *)
  ev_dur : int;  (* 0 for instants and counter samples *)
  ev_kind : kind;
  ev_args : (string * Json.t) list;
}

type t = {
  mutable events : event list; (* newest first *)
  mutable open_spans : (string * string * string * (string * Json.t) list * int) list;
  mutable clock : int; (* strictly monotone process clock for spans *)
}

let create () = { events = []; open_spans = []; clock = 0 }
let enabled trace = Option.is_some trace

(* Strictly increasing: ties in [Sys.time] still order begin < end. *)
let now t =
  let wall = int_of_float (Sys.time () *. 1e6) in
  let ts = if wall > t.clock then wall else t.clock + 1 in
  t.clock <- ts;
  ts

let record t ev = t.events <- ev :: t.events

let span trace ?(track = "compiler") ?(cat = "compile") ?(args = []) name f =
  match trace with
  | None -> f ()
  | Some t ->
      t.open_spans <- (name, track, cat, args, now t) :: t.open_spans;
      Fun.protect
        ~finally:(fun () ->
          match t.open_spans with
          | (n, tr, c, a, t0) :: rest ->
              t.open_spans <- rest;
              let te = now t in
              record t
                {
                  ev_name = n;
                  ev_cat = c;
                  ev_track = tr;
                  ev_ts = t0;
                  ev_dur = te - t0;
                  ev_kind = Span;
                  ev_args = a;
                }
          | [] -> ())
        f

let event trace ?(track = "compiler") ?(cat = "compile") ?(args = []) name =
  match trace with
  | None -> ()
  | Some t ->
      record t
        {
          ev_name = name;
          ev_cat = cat;
          ev_track = track;
          ev_ts = now t;
          ev_dur = 0;
          ev_kind = Instant;
          ev_args = args;
        }

let interval trace ~track ?(cat = "sim") ?(args = []) ~ts ~dur name =
  match trace with
  | None -> ()
  | Some t ->
      record t
        {
          ev_name = name;
          ev_cat = cat;
          ev_track = track;
          ev_ts = ts;
          ev_dur = dur;
          ev_kind = Span;
          ev_args = args;
        }

let counter trace ~track ?(cat = "sim") ~ts ~value name =
  match trace with
  | None -> ()
  | Some t ->
      record t
        {
          ev_name = name;
          ev_cat = cat;
          ev_track = track;
          ev_ts = ts;
          ev_dur = 0;
          ev_kind = Counter;
          ev_args = [ ("value", Json.Int value) ];
        }

let events t = List.rev t.events

(* Emission order interleaves tracks and closes parents after children;
   exporters present a time-sorted view (parents before children at equal
   start, via the longer duration). *)
let sorted t =
  List.stable_sort
    (fun a b ->
      match compare a.ev_ts b.ev_ts with 0 -> compare b.ev_dur a.ev_dur | c -> c)
    (events t)

let tracks t =
  List.fold_left
    (fun acc e -> if List.mem e.ev_track acc then acc else acc @ [ e.ev_track ])
    [] (sorted t)

(* Span events on one track must nest: each span lies either fully inside
   or fully outside every other. *)
let well_nested t =
  List.for_all
    (fun track ->
      let spans =
        List.filter (fun e -> e.ev_kind = Span && e.ev_track = track) (sorted t)
      in
      let rec check stack = function
        | [] -> true
        | e :: rest ->
            let stack =
              List.filter (fun (_, fin) -> fin > e.ev_ts) stack
            in
            let fits =
              match stack with
              | [] -> true
              | (_, fin) :: _ -> e.ev_ts + e.ev_dur <= fin
            in
            fits && check ((e.ev_ts, e.ev_ts + e.ev_dur) :: stack) rest
      in
      check [] spans)
    (tracks t)

(* --- Chrome trace-event JSON (Perfetto-loadable) ----------------------- *)

let to_chrome_json t =
  let track_ids = List.mapi (fun i tr -> (tr, i)) (tracks t) in
  let meta =
    List.map
      (fun (tr, pid) ->
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.Str tr) ]);
          ])
      track_ids
  in
  let ev_json e =
    let pid = List.assoc e.ev_track track_ids in
    let common =
      [
        ("name", Json.Str e.ev_name);
        ("cat", Json.Str e.ev_cat);
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("ts", Json.Int e.ev_ts);
      ]
    in
    match e.ev_kind with
    | Span ->
        Json.Obj
          (common
          @ [ ("ph", Json.Str "X"); ("dur", Json.Int e.ev_dur);
              ("args", Json.Obj e.ev_args) ])
    | Instant ->
        Json.Obj
          (common @ [ ("ph", Json.Str "i"); ("s", Json.Str "t");
                      ("args", Json.Obj e.ev_args) ])
    | Counter -> Json.Obj (common @ [ ("ph", Json.Str "C"); ("args", Json.Obj e.ev_args) ])
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ List.map ev_json (sorted t)));
         ("displayTimeUnit", Json.Str "ms");
       ])

(* --- Compact text summary ---------------------------------------------- *)

let summary t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun track ->
      let rows = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun e ->
          if e.ev_track = track && e.ev_kind = Span then begin
            let n, d =
              match Hashtbl.find_opt rows e.ev_name with
              | Some (n, d) -> (n, d)
              | None ->
                  order := e.ev_name :: !order;
                  (0, 0)
            in
            Hashtbl.replace rows e.ev_name (n + 1, d + e.ev_dur)
          end)
        (events t);
      if !order <> [] then begin
        Buffer.add_string buf (Printf.sprintf "[%s]\n" track);
        List.iter
          (fun name ->
            let n, d = Hashtbl.find rows name in
            Buffer.add_string buf (Printf.sprintf "  %-40s %3d x  %10d\n" name n d))
          (List.rev !order)
      end)
    (tracks t);
  Buffer.contents buf
