(** Structured tracing & profiling for the compiler and the simulator.

    A {!t} is a collecting sink. All recording entry points take a
    [t option]: [None] is the null sink, on which every call is a no-op,
    so instrumented code paths cost nothing when tracing is off.

    Two time bases coexist in one trace, on separate tracks:
    - compile-time {!span}s and {!event}s are stamped with a strictly
      monotone process clock (microseconds of CPU time);
    - simulated-execution {!interval}s and {!counter} samples are stamped
      by the caller in cycles.

    {!to_chrome_json} renders everything as Chrome trace-event JSON
    (load it at https://ui.perfetto.dev), one Perfetto process per
    track; {!summary} renders a compact per-track text table. *)

(** Minimal JSON document builder (the repo is dependency-free, so this
    also backs {!Htvm.Report}'s machine-readable output). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped, non-finite floats become
      [null]. *)

  val float_repr : float -> string
  (** The float rendering {!to_string} uses: shortest decimal form that
      round-trips through [float_of_string] ([%.12g], escalating to
      [%.15g]/[%.17g] when needed); non-finite floats become ["null"].
      Exposed so other text formats (metrics exposition) render floats
      byte-identically to the JSON exporter. *)
end

type kind = Span | Instant | Counter

type event = {
  ev_name : string;
  ev_cat : string;
  ev_track : string;
  ev_ts : int;   (** microseconds for compile spans, cycles for sim intervals *)
  ev_dur : int;  (** 0 for instants and counter samples *)
  ev_kind : kind;
  ev_args : (string * Json.t) list;
}

type t

val create : unit -> t
val enabled : t option -> bool

val span :
  t option ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span trace name f] times [f] on the process clock and records a
    span named [name] (default track ["compiler"]). Nested calls yield
    properly nested spans; the span closes even if [f] raises. *)

val event :
  t option ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit
(** An instantaneous event at the current process clock. *)

val interval :
  t option ->
  track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ts:int ->
  dur:int ->
  string ->
  unit
(** A caller-timestamped interval (simulated engine activity). *)

val counter : t option -> track:string -> ?cat:string -> ts:int -> value:int -> string -> unit
(** A counter sample (rendered as a Perfetto counter track). *)

val events : t -> event list
(** Collected events in emission order. *)

val tracks : t -> string list
(** Track names in order of first (time-sorted) appearance. *)

val well_nested : t -> bool
(** Do span events nest properly on every track (no partial overlap)? *)

val to_chrome_json : t -> string
val summary : t -> string
