(** Injective encoding of field lists into flat string keys.

    [encode fields] length-prefixes every field, so distinct field
    lists always produce distinct keys — no separator character can be
    smuggled in via field contents. Used for cache keys wherever a
    composite of untrusted strings (accelerator names, layer
    renderings) must be collision-free. *)

val encode : string list -> string
(** [encode fields] is the uniquely decodable rendering of [fields]. *)

val decode : string -> string list option
(** [decode key] recovers the field list, or [None] if [key] is not a
    well-formed encoding. [decode (encode l) = Some l] for every [l]. *)
