(* Atomic result-file writes.

   A direct open-and-write can be interrupted (signal, crash, disk
   full) after truncating the destination, leaving a partial file that
   downstream diffs — or a persistent cache — would misread. Writing
   to a temp file in the same directory and renaming over the target
   makes the visible file either the old contents or the complete new
   contents, never a prefix: rename(2) is atomic within a filesystem,
   and [Filename.temp_file ~temp_dir] keeps the temp on that same
   filesystem. This protects against interrupted processes, not power
   loss (no fsync). *)

let with_atomic_out path f =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path ^ ".") ".tmp"
  in
  match Out_channel.with_open_bin tmp f with
  | result ->
      Sys.rename tmp path;
      result
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_atomic path contents =
  with_atomic_out path (fun oc -> Out_channel.output_string oc contents)
