(* Injective encoding of field lists into flat cache keys.

   Plain concatenation with a separator is not injective: a field that
   contains the separator shifts the boundaries, so two distinct field
   lists can render to the same key. Length-prefixing every field makes
   the encoding uniquely decodable (read digits up to ':', take that
   many bytes, repeat), hence injective over arbitrary field contents —
   including empty fields and fields containing ':' or digits. *)

let add_field buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let encode fields =
  let buf = Buffer.create 64 in
  List.iter (add_field buf) fields;
  Buffer.contents buf

let decode key =
  let n = String.length key in
  let rec len_at i acc saw_digit =
    if i >= n then None
    else
      match key.[i] with
      | '0' .. '9' as c ->
          len_at (i + 1) ((acc * 10) + (Char.code c - Char.code '0')) true
      | ':' when saw_digit -> Some (i + 1, acc)
      | _ -> None
  in
  let rec go i acc =
    if i = n then Some (List.rev acc)
    else
      match len_at i 0 false with
      | None -> None
      | Some (j, len) ->
          if j + len > n then None
          else go (j + len) (String.sub key j len :: acc)
  in
  go 0 []
