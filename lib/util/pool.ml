(* Fixed-size domain pool.

   Workers block on a condition variable until a batch is published,
   then race down a shared atomic index, each writing results into its
   task's own slot. The submitting domain participates in the drain, so
   a pool of [jobs] runs [jobs] tasks at once with [jobs - 1] spawned
   domains, and [jobs = 1] degenerates to plain [List.map] with no
   domain ever created. *)

type batch = {
  run : int -> unit;  (* must not raise; exceptions are captured in slots *)
  size : int;
  next : int Atomic.t;
  remaining : int Atomic.t;
}

type shared = {
  mutex : Mutex.t;
  work : Condition.t;      (* a batch was published or the pool is stopping *)
  finished : Condition.t;  (* a batch's last task completed *)
  mutable current : batch option;
  mutable stop : bool;
}

type t = {
  pool_jobs : int;
  shared : shared option;  (* [None] iff [pool_jobs = 1] *)
  mutable domains : unit Domain.t list;
  mutable spawned : bool;
      (* workers are spawned on the first multi-task batch, so an unused
         pool costs nothing (Domain.spawn is milliseconds on small
         machines) *)
}

let jobs t = t.pool_jobs

(* Sequential map honouring the pool's exception contract: every task
   runs to completion even when an earlier one raised, and the exception
   of the lowest-indexed failing task is re-raised afterwards (with its
   backtrace). Plain [List.map] would abandon the tail on the first
   raise, so the [jobs = 1] and single-task paths go through here. *)
let map_seq f xs =
  let results =
    List.map
      (fun x ->
        match f x with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      xs
  in
  List.map
    (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

(* Pull tasks until the batch's index is exhausted; whoever completes the
   last task wakes the submitter. *)
let drain sh b =
  let rec pull () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.size then begin
      b.run i;
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        Mutex.lock sh.mutex;
        Condition.broadcast sh.finished;
        Mutex.unlock sh.mutex
      end;
      pull ()
    end
  in
  pull ()

let worker sh () =
  Mutex.lock sh.mutex;
  let rec loop () =
    if sh.stop then Mutex.unlock sh.mutex
    else
      match sh.current with
      | Some b when Atomic.get b.next < b.size ->
          Mutex.unlock sh.mutex;
          drain sh b;
          Mutex.lock sh.mutex;
          loop ()
      | _ ->
          Condition.wait sh.work sh.mutex;
          loop ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  if jobs = 1 then { pool_jobs = 1; shared = None; domains = []; spawned = false }
  else
    let sh =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        current = None;
        stop = false;
      }
    in
    { pool_jobs = jobs; shared = Some sh; domains = []; spawned = false }

(* Only ever called from the owning domain (the one that submits maps). *)
let ensure_spawned t sh =
  if not t.spawned then begin
    t.spawned <- true;
    t.domains <- List.init (t.pool_jobs - 1) (fun _ -> Domain.spawn (worker sh))
  end

let shutdown t =
  match t.shared with
  | None -> ()
  | Some sh ->
      Mutex.lock sh.mutex;
      sh.stop <- true;
      Condition.broadcast sh.work;
      Mutex.unlock sh.mutex;
      List.iter Domain.join t.domains;
      t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match t.shared with
  | None -> map_seq f xs
  | Some sh ->
      let input = Array.of_list xs in
      let n = Array.length input in
      if n <= 1 then map_seq f xs
      else begin
        ensure_spawned t sh;
        let results = Array.make n None in
        let run i =
          let r =
            match f input.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r
        in
        let b =
          { run; size = n; next = Atomic.make 0; remaining = Atomic.make n }
        in
        Mutex.lock sh.mutex;
        sh.current <- Some b;
        Condition.broadcast sh.work;
        Mutex.unlock sh.mutex;
        drain sh b;
        Mutex.lock sh.mutex;
        while Atomic.get b.remaining > 0 do
          Condition.wait sh.finished sh.mutex
        done;
        sh.current <- None;
        Mutex.unlock sh.mutex;
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
               | None -> assert false)
             results)
      end

let iter t f xs = ignore (map t (fun x -> f x) xs)

let available () = Domain.recommended_domain_count ()

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "job count must be >= 1 (got %d)" n)
  | None -> Error (Printf.sprintf "job count must be a positive integer (got %S)" s)

(* An empty HTVM_JOBS counts as unset (the conventional way to clear an
   environment variable from a shell that cannot unset); anything else
   malformed fails loudly — a silently ignored job count and a rejected
   --jobs flag must not coexist. A valid value is capped at the machine's
   recommended domain count: HTVM_JOBS is an ambient default, typically
   set once for a beefy box and inherited by every shell, so letting it
   oversubscribe a smaller machine with idle spinning domains is a
   footgun. An explicit --jobs N still forces N (callers pass flags
   around this resolver). The [default] is the caller's own choice and is
   deliberately not capped. *)
let jobs_from_env ?(default = 1) () =
  match Sys.getenv_opt "HTVM_JOBS" with
  | None | Some "" -> default
  | Some s -> (
      match parse_jobs s with
      | Ok n -> min n (available ())
      | Error msg -> invalid_arg ("HTVM_JOBS: " ^ msg))
