(** A fixed-size domain pool for embarrassingly parallel compiler work.

    A pool owns [jobs - 1] worker domains (the submitting domain is the
    last worker, so [jobs] tasks make progress at once). Batches are
    submitted with {!map}/{!iter}: tasks are pulled from a shared index,
    results land in their input slot, so {!map} always preserves input
    order — callers get deterministic, sequential-identical output
    regardless of [jobs]. With [jobs = 1] no domain is ever spawned and
    {!map} is exactly [List.map].

    Task functions run on worker domains: they must not touch shared
    mutable state (in this codebase: a {!Trace.t} sink or a
    {!Dory.Tiling_cache.t}) — coordinate those from the submitting
    domain instead. *)

type t

val create : jobs:int -> t
(** A pool of [max 1 jobs] workers. Worker domains are spawned lazily on
    the first batch with more than one task, so an unused pool costs
    nothing. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join all worker domains. Idempotent. The pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] even on exceptions. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. If any task raises, the remaining
    tasks still run to completion and the exception of the
    lowest-indexed failing task is re-raised (with its backtrace) on the
    submitting domain — deterministic even when several tasks fail. *)

val iter : t -> ('a -> unit) -> 'a list -> unit

val available : unit -> int
(** The runtime's recommended domain count for this machine. *)

val jobs_from_env : ?default:int -> unit -> int
(** [HTVM_JOBS] when set to a positive integer, capped at {!available}
    (an ambient default must not oversubscribe a smaller machine — an
    explicit [--jobs N] still forces [N]); [default] (1) when the
    variable is unset or empty. [default] itself is never capped.
    @raise Invalid_argument on a malformed, zero or negative value, with
    the same diagnosis {!parse_jobs} gives a rejected [--jobs] flag — a
    bad environment variable must fail as loudly as a bad flag. *)

val parse_jobs : string -> (int, string) result
(** Validate a user-supplied job count: positive integers only;
    [Error] carries a human-readable diagnosis. *)
