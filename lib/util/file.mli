(** Atomic file writes: temp file + rename, so a reader never observes
    a partially written file. The temp file lives in the destination's
    directory (same filesystem, so the rename is atomic) and is removed
    if the writer raises. Guards against interrupted processes, not
    power loss (no fsync). *)

val with_atomic_out : string -> (out_channel -> 'a) -> 'a
(** [with_atomic_out path f] runs [f] on a temp out_channel and
    atomically renames it over [path] when [f] returns. If [f] raises,
    [path] is left untouched and the temp file is removed. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] atomically replaces [path] with
    [contents]. *)
