(* [(a + b - 1) / b] truncates toward zero, so a negative [a] would
   silently yield a floor-division result (e.g. [ceil_div (-1) 4 = 0],
   not the "round away from zero" a caller might expect). Every call
   site in this codebase divides a size, a dimension or a byte count —
   all non-negative — so negative numerators are rejected outright
   rather than given a surprising answer. *)
let ceil_div a b =
  assert (a >= 0);
  assert (b > 0);
  (a + b - 1) / b

let round_up a b = ceil_div a b * b

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_ceil n =
  assert (n >= 1);
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

(* O(sqrt n): every divisor d <= sqrt n pairs with n / d >= sqrt n, so one
   scan up to the root collects both halves of the list. *)
let divisors n =
  assert (n > 0);
  let rec go d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then
      let q = n / d in
      go (d + 1) (d :: small) (if q = d then large else q :: large)
    else go (d + 1) small large
  in
  go 1 [] []

let kib n = n * 1024
