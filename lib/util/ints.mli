(** Small integer helpers shared across the compiler and simulator. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the smallest [n] with [n * b >= a]. Requires
    [a >= 0] and [b > 0] (asserted): the truncated-toward-zero formula
    would silently mis-round negative numerators. *)

val round_up : int -> int -> int
(** [round_up a b] rounds [a] up to the next multiple of [b]. Requires
    [a >= 0] and [b > 0] (asserted). *)

val clamp : lo:int -> hi:int -> int -> int
(** Saturate a value into the inclusive range [\[lo, hi\]]. *)

val is_pow2 : int -> bool
(** Whether the (positive) argument is a power of two. *)

val log2_ceil : int -> int
(** Smallest [k] such that [2^k >= n], for [n >= 1]. *)

val divisors : int -> int list
(** All positive divisors of a positive integer, ascending. *)

val kib : int -> int
(** [kib n] is [n * 1024] — byte count of [n] KiB. *)
