(* Sustained chaos-under-load campaigns (see campaign.mli).

   One Serve.run per fault-rate point, everything but the plan held
   fixed. Curve fields come exclusively from the predicted plane of the
   underlying runs, so the campaign tally inherits the serve tally's
   workers/jobs byte-identity. *)

module J = Trace.Json

type config = {
  c_serve : Serve.config;
  c_rates : float list;
  c_site : string;
  c_kind : string;
  c_fault_seed : int;
}

let default =
  {
    c_serve = { Serve.default with health = Some Health.default };
    c_rates = [ 0.002; 0.01; 0.05 ];
    c_site = "dma_in";
    c_kind = "flip";
    c_fault_seed = 7;
  }

type point = {
  pt_rate : float;
  pt_plan : Fault.Plan.t;
  pt_report : Serve.report;
}

type t = { t_config : config; t_points : point list }

let rate_label rate = Printf.sprintf "%.6g" rate

let plan_of_rate cfg rate =
  Fault.Plan.of_string
    (Printf.sprintf "seed=%d,%s@p=%.6g:%s" cfg.c_fault_seed cfg.c_site rate
       cfg.c_kind)

let validate cfg =
  if cfg.c_rates = [] then Error "campaign: at least one rate is required"
  else if
    List.exists
      (fun r -> (not (Float.is_finite r)) || r < 0.0 || r > 1.0)
      cfg.c_rates
  then Error "campaign: rates must be in [0, 1]"
  else if
    List.length (List.sort_uniq compare cfg.c_rates)
    <> List.length cfg.c_rates
  then Error "campaign: rates must be distinct"
  else
    (* Surface an unparseable site/kind spec before any point runs. *)
    match plan_of_rate cfg (List.hd cfg.c_rates) with
    | Ok _ -> Ok ()
    | Error msg -> Error ("campaign: " ^ msg)

let run ?metrics cfg artifact ~graph =
  match validate cfg with
  | Error _ as e -> e
  | Ok () -> (
      let reg = match metrics with Some r -> r | None -> Metrics.create () in
      let run_point rate =
        match plan_of_rate cfg rate with
        | Error msg -> Error ("campaign: " ^ msg)
        | Ok plan -> (
            let serve_cfg = { cfg.c_serve with Serve.plan } in
            match Serve.run serve_cfg artifact ~graph with
            | report -> Ok { pt_rate = rate; pt_plan = plan; pt_report = report }
            | exception Invalid_argument msg -> Error msg)
      in
      let rec sweep acc = function
        | [] -> Ok (List.rev acc)
        | rate :: rest -> (
            match run_point rate with
            | Error _ as e -> e
            | Ok pt -> sweep (pt :: acc) rest)
      in
      match sweep [] cfg.c_rates with
      | Error _ as e -> e
      | Ok points ->
          (* The curve, as rate-labelled cycles-track counters. Every
             value is predicted-plane, so the track stays byte-identical
             at any workers/jobs. *)
          List.iter
            (fun pt ->
              let r = pt.pt_report in
              let labels = [ ("rate", rate_label pt.pt_rate) ] in
              let c name help = Metrics.counter reg ~labels ~help name in
              Metrics.inc
                (c "htvm_campaign_served_total" "Served requests per rate point.")
                r.Serve.r_served;
              Metrics.inc
                (c "htvm_campaign_rejected_total"
                   "Rejected (shed) requests per rate point.")
                r.Serve.r_rejected;
              Metrics.inc
                (c "htvm_campaign_aborted_total"
                   "Aborted requests per rate point.")
                r.Serve.r_aborted;
              Metrics.inc
                (c "htvm_campaign_slo_pred_violations_total"
                   "Predicted SLO violations per rate point.")
                (match r.Serve.r_slo with
                | Some s -> s.Serve.s_pred_violations
                | None -> 0);
              match r.Serve.r_health with
              | None -> ()
              | Some h ->
                  Metrics.inc
                    (c "htvm_campaign_readmissions_total"
                       "Predicted-plane readmissions per rate point.")
                    h.Serve.h_pred_readmissions;
                  Metrics.inc
                    (c "htvm_campaign_relapses_total"
                       "Predicted-plane relapses per rate point.")
                    h.Serve.h_pred_relapses;
                  Metrics.inc
                    (c "htvm_campaign_fail_open_total"
                       "Predicted fail-open dispatches per rate point.")
                    h.Serve.h_pred_fail_open;
                  Metrics.inc
                    (c "htvm_campaign_health_shed_total"
                       "Health-admission sheds per rate point.")
                    h.Serve.h_shed)
            points;
          Ok { t_config = cfg; t_points = points })

(* --- rendering -------------------------------------------------------- *)

let point_fields pt =
  let r = pt.pt_report in
  let slo_pred =
    match r.Serve.r_slo with Some s -> s.Serve.s_pred_violations | None -> 0
  in
  let h_read, h_rel, h_fo, h_shed =
    match r.Serve.r_health with
    | Some h ->
        ( h.Serve.h_pred_readmissions,
          h.Serve.h_pred_relapses,
          h.Serve.h_pred_fail_open,
          h.Serve.h_shed )
    | None -> (0, 0, 0, 0)
  in
  (slo_pred, h_read, h_rel, h_fo, h_shed)

let tally t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "htvm-campaign-tally v1\n";
  let base = t.t_config.c_serve in
  Buffer.add_string buf
    (Printf.sprintf
       "site %s kind %s fault-seed %d rates %s\n" t.t_config.c_site
       t.t_config.c_kind t.t_config.c_fault_seed
       (String.concat "," (List.map rate_label t.t_config.c_rates)));
  Buffer.add_string buf
    (Printf.sprintf
       "seed %d requests %d batch %d queue-depth %d retry-budget %d health %s \
        slo %s\n"
       base.Serve.seed base.Serve.requests base.Serve.max_batch
       base.Serve.queue_depth base.Serve.retry_budget
       (match base.Serve.health with Some _ -> "on" | None -> "off")
       (match base.Serve.slo_sojourn with
       | Some tgt -> string_of_int tgt
       | None -> "off"));
  List.iter
    (fun pt ->
      let r = pt.pt_report in
      let slo_pred, h_read, h_rel, h_fo, h_shed = point_fields pt in
      Buffer.add_string buf
        (Printf.sprintf
           "rate %s served=%d rejected=%d aborted=%d shed-rate=%.4f \
            slo-pred=%d readmissions=%d relapses=%d fail-open=%d \
            health-shed=%d service-p99=%d\n"
           (rate_label pt.pt_rate) r.Serve.r_served r.Serve.r_rejected
           r.Serve.r_aborted r.Serve.r_shed_rate slo_pred h_read h_rel h_fo
           h_shed r.Serve.r_service.Serve.p99))
    t.t_points;
  Buffer.contents buf

let summary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "campaign: %d rate point(s) on site %s (%s), %d request(s) each\n"
       (List.length t.t_points) t.t_config.c_site t.t_config.c_kind
       t.t_config.c_serve.Serve.requests);
  List.iter
    (fun pt ->
      let r = pt.pt_report in
      let slo_pred, h_read, h_rel, h_fo, h_shed = point_fields pt in
      Buffer.add_string buf
        (Printf.sprintf
           "rate %-8s served %3d, rejected %3d, aborted %3d, slo-pred %3d, \
            readmissions %2d, relapses %2d, fail-open %2d, health-shed %2d\n"
           (rate_label pt.pt_rate) r.Serve.r_served r.Serve.r_rejected
           r.Serve.r_aborted slo_pred h_read h_rel h_fo h_shed))
    t.t_points;
  Buffer.contents buf

let to_json t =
  let point_json pt =
    let r = pt.pt_report in
    let slo_pred, h_read, h_rel, h_fo, h_shed = point_fields pt in
    J.Obj
      [
        ("rate", J.Float pt.pt_rate);
        ("plan", J.Str (Fault.Plan.to_string pt.pt_plan));
        ("served", J.Int r.Serve.r_served);
        ("rejected", J.Int r.Serve.r_rejected);
        ("aborted", J.Int r.Serve.r_aborted);
        ("shed_rate", J.Float r.Serve.r_shed_rate);
        ("slo_pred_violations", J.Int slo_pred);
        ("readmissions", J.Int h_read);
        ("relapses", J.Int h_rel);
        ("fail_open", J.Int h_fo);
        ("health_shed", J.Int h_shed);
        ("service_p99", J.Int r.Serve.r_service.Serve.p99);
      ]
  in
  J.Obj
    [
      ("site", J.Str t.t_config.c_site);
      ("kind", J.Str t.t_config.c_kind);
      ("fault_seed", J.Int t.t_config.c_fault_seed);
      ("seed", J.Int t.t_config.c_serve.Serve.seed);
      ("requests", J.Int t.t_config.c_serve.Serve.requests);
      ("health", J.Bool (t.t_config.c_serve.Serve.health <> None));
      ( "slo_target",
        match t.t_config.c_serve.Serve.slo_sojourn with
        | Some tgt -> J.Int tgt
        | None -> J.Null );
      ("points", J.List (List.map point_json t.t_points));
    ]
