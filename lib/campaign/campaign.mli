(** Sustained chaos-under-load campaigns.

    A campaign sweeps one fault site's injection probability across a
    list of rate points and runs the full {!Serve.run} pipeline — load
    generation, health lifecycle, fault injection, retry/abort — once
    per point, holding everything else fixed. The output is the
    robustness curve the paper's reliability story needs: SLO-violation,
    shed-rate, abort and readmission counts as a function of fault
    pressure.

    Every curve field is taken from the {e predicted} (workers/jobs-
    invariant) plane of the underlying runs, so {!tally} is
    byte-identical at any fleet shape or host job count — the campaign
    analogue of the serve tally guarantee, enforced by
    `tools/verify.sh`. *)

type config = {
  c_serve : Serve.config;
      (** base serving config. Its [plan] field is replaced per rate
          point; everything else (seed, arrival, health lifecycle, SLO
          target, ...) is held fixed across the sweep. *)
  c_rates : float list;  (** injection probabilities, each in [0, 1] *)
  c_site : string;  (** fault site label, e.g. ["dma_in"] (plan grammar) *)
  c_kind : string;  (** fault kind spec, e.g. ["flip"] or ["stall=400"] *)
  c_fault_seed : int;  (** seed shared by every generated plan *)
}

val default : config
(** [Serve.default] base with the default health lifecycle enabled, a
    probabilistic bit-flip on [dma_in], fault seed 7 and rates
    [0.002; 0.01; 0.05]. *)

type point = {
  pt_rate : float;
  pt_plan : Fault.Plan.t;  (** the generated per-point campaign plan *)
  pt_report : Serve.report;
}

type t = { t_config : config; t_points : point list  (** in sweep order *) }

val run :
  ?metrics:Metrics.t ->
  config ->
  Htvm.Compile.artifact ->
  graph:Ir.Graph.t ->
  (t, string) result
(** Run one serve pipeline per rate point (each on a private metrics
    registry) and record the curve into [metrics] (or a private
    registry) as rate-labelled cycles-track counters
    ([htvm_campaign_*_total{rate=...}]). All failures are typed
    [Error]s: an empty or out-of-range rate list, an unparseable
    site/kind spec, or a base config {!Serve.run} rejects. *)

val tally : t -> string
(** The functional ledger of the sweep: one line per rate point with
    served/rejected/aborted counts, predicted SLO violations, shed
    rate, and the predicted plane's readmission/relapse/fail-open/shed
    stats. Byte-identical at any [workers]/[jobs]. *)

val summary : t -> string
(** Human-readable curve, one row per rate point. *)

val to_json : t -> Trace.Json.t
(** Machine-readable sweep ([htvmc campaign --json],
    [BENCH_campaign.json]): config plus the per-point curve fields. *)
