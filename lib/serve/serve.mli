(** Batched inference serving over a simulated DIANA fleet.

    A {!run} loads one compiled {!Htvm.Compile.artifact} and drives a
    fleet of [workers] independent simulated SoC instances through a
    seeded synthetic request stream. The serving loop is a discrete-event
    simulation in {e simulated cycles}:

    - {b Arrivals.} Requests carry a per-request input seed and an
      arrival time, both drawn from one {!Util.Rng} stream seeded by
      [seed]. {!Closed} is the saturating load generator (every request
      backlogged at cycle 0, the standard throughput experiment);
      {!Poisson} is the open-loop experiment with exponential
      inter-arrival gaps.
    - {b Admission.} In Poisson mode the ingress buffer holds at most
      [queue_depth] requests per dispatch window; requests arriving into
      a full window are shed with a typed {!Rejected} outcome. Admission
      is a pure function of the arrival stream, so the shed set does not
      depend on the fleet size. Closed mode never sheds (the generator
      only offers what it wants served).
    - {b Batching.} Each window's admitted requests are chunked into
      batches of at most [max_batch]; a batch costs one
      [dispatch_overhead] on top of its requests' service cycles, so
      batching amortizes dispatch cost at the price of queueing delay.
    - {b Routing.} A batch goes to the earliest-free instance that is
      healthy at dispatch time (lowest id on ties). Instances whose
      fault sessions have reported at least [degrade_after] faults are
      marked degraded at the completion cycle of the offending batch and
      routed around from then on; if every instance is degraded the
      router fails open and keeps dispatching (degraded beats down).
      With a [health] lifecycle configured, the one-way degraded flag is
      replaced by a per-instance {!Health.t} state machine: degraded
      instances re-enter probation after a (relapse-escalated) cooldown,
      run seeded probes that cost cycles on the probed instance, and are
      {e readmitted} to the rotation after enough consecutive passes.
    - {b Execution.} Every request runs on a fresh simulated machine
      (its own memories and counters) under its {e own} fault session —
      the campaign seed is derived from the plan seed and the request
      id — so a request's output digest, service cycles and fault
      tallies are a pure function of the request, never of which
      instance served it or how many instances exist.

    The functional {!tally} (per-request outcomes + the service-latency
    histogram) is therefore byte-identical for a fixed [seed] at any
    [workers] and any [jobs] — the serving-layer analogue of the
    compilation engine's jobs-invariance — while throughput, queueing
    delay and per-instance utilization legitimately improve with fleet
    size and are reported separately. *)

type arrival =
  | Closed
      (** Saturating backlog: all requests available at cycle 0, no
          shedding. The throughput experiment. *)
  | Poisson of { mean_gap : int }
      (** Open loop with exponential inter-arrival gaps of the given
          mean (cycles); [mean_gap <= 0] means auto: half a probe
          request's service time, i.e. roughly 2x one instance's
          capacity. *)

type config = {
  workers : int;  (** fleet size: independent simulated SoC instances *)
  max_batch : int;  (** requests per dispatch batch *)
  queue_depth : int;  (** ingress buffer capacity per dispatch window *)
  requests : int;  (** synthetic requests to generate *)
  seed : int;  (** seeds the arrival process and every request payload *)
  arrival : arrival;
  window : int;
      (** dispatch window length in cycles (Poisson mode only);
          [<= 0] means auto: one probe request's service time *)
  dispatch_overhead : int;  (** cycles charged once per dispatched batch *)
  plan : Fault.Plan.t;
      (** fault campaign; {!Fault.Plan.empty} disables injection. Each
          request draws from a session seeded by [plan.seed] and the
          request id. *)
  retry_budget : int;  (** per-operation retries before a request aborts *)
  degrade_after : int option;
      (** mark an instance degraded once the fault sessions of the
          requests it served have reported this many faults (detected +
          silent); [None] = never *)
  degraded_instances : int list;
      (** instance ids degraded from cycle 0 (a health monitor's prior) *)
  jobs : int;
      (** host worker domains driving the fleet's request executions;
          purely a wall-clock knob — results are bit-identical at any
          value *)
  slo_sojourn : int option;
      (** sojourn (arrival-to-completion) SLO target in cycles; [None]
          disables SLO accounting. Violations are counted twice: against
          the {e predicted} queueing-free sojourn (worker-invariant, in
          the tally and on the metrics cycles track) and against the
          {e observed} scheduled sojourn (fleet-shape dependent, report
          and sched track only). *)
  use_plan : bool;
      (** execute requests through the artifact's compiled
          {!Sim.Plan} fast path (default); [false] forces the slow
          interpretive oracle. Tallies are byte-identical either way —
          `tools/verify.sh` diffs the two. *)
  memoize : bool;
      (** reuse one execution across admitted requests with identical
          input digests (dedup happens before the pool fan-out). Sound
          only for input-pure executions, so it requires an empty fault
          [plan]. The tally is byte-identical with and without it; hit /
          miss counts land in the report, the summary and the
          [htvm_serve_memo_{hits,misses}_total] counters. *)
  input_mix : int;
      (** [0] (default): every request draws a fresh input seed — the
          historical fully-unique stream, byte-for-byte. [k > 0]: per-
          request seeds are folded into a pool of [k] seeds derived from
          [seed], so requests repeat payloads and memoization has
          something to hit. Arrival times are unaffected by the mix. *)
  health : Health.config option;
      (** enable the health lifecycle. Mutually exclusive with
          [degrade_after] (the lifecycle subsumes the one-way flag).
          Auto-resolution against the probe request's service cycles:
          [probation_window <= 0] becomes twice the probe service time,
          [probe_interval < 0] a quarter of it (0 stays legal:
          back-to-back probes), [probe_cost <= 0] a tenth (min 1), and
          [backoff_cap <= 0] eight probation windows.

          Two planes run the same machine. The {e predicted} plane is
          one logical machine (instance id -1) advanced along the
          queueing-free batch timeline — it feeds the tally footer, the
          cycles-track [htvm_health_pred_*] counters, health-aware
          admission shedding and the predicted fail-open count, all
          byte-identical at any [workers]/[jobs]. The {e observed} plane
          is one machine per instance fed by the faults of the batches
          it actually served — it drives routing eligibility, charges
          probe cycles to instance busy time, and reports via
          {!instance_stat.i_health}, the sched track and {!run}'s
          trace. *)
}

val default : config
(** [workers = 4], [max_batch = 8], [queue_depth = 32], [requests = 64],
    [seed = 42], closed-loop arrivals, auto window, 1000-cycle dispatch
    overhead, no faults, retry budget 3, no degradation, [jobs = 1],
    no SLO, plan fast path on, no memoization, fully-unique inputs, no
    health lifecycle. *)

type request = {
  r_id : int;
  r_input_seed : int;  (** seeds {!Models.Zoo.random_input} *)
  r_arrival : int;  (** arrival cycle *)
}

type outcome =
  | Served of {
      o_instance : int;  (** who served it (worker-count dependent) *)
      o_batch : int;  (** global batch index *)
      o_start : int;  (** cycle its own service began *)
      o_finish : int;  (** completion cycle *)
      o_service : int;  (** simulated inference cycles (worker-invariant) *)
      o_wait : int;  (** [o_start - r_arrival]: queueing + batching delay *)
      o_digest : string;  (** output-tensor digest (worker-invariant) *)
      o_detected : int;  (** detected faults during this request *)
      o_silent : int;  (** silent corruptions during this request *)
      o_retries : int;
      o_pred_sojourn : int;
          (** predicted queueing-free sojourn: window close + dispatch
              overhead + in-batch service prefix, minus arrival. A
              worker-invariant lower bound on [o_finish - r_arrival]
              (batch assembly precedes routing). *)
    }
  | Rejected of { o_window : int }
      (** shed at admission: the window's ingress buffer was full *)
  | Aborted of {
      o_instance : int;
      o_batch : int;
      o_site : string;  (** failing fault site *)
      o_attempts : int;  (** attempts made, including the original *)
    }  (** a detected fault exhausted [retry_budget]; the modeled runtime
          returned an error rather than corrupt data *)

type percentiles = {
  p_count : int;
  p_min : int;
  p_mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  p_max : int;
}

val percentiles_of : int list -> percentiles
(** Nearest-rank percentiles in exact integer arithmetic (the p-th
    percentile of n values is the value at rank ceil(p*n/100), 1-based);
    all-zero for the empty list. *)

type health_stat = {
  hs_state : Health.state;  (** end-of-run state *)
  hs_transitions : int;
  hs_readmissions : int;
  hs_relapses : int;
  hs_probes_passed : int;
  hs_probes_failed : int;
  hs_probe_cycles : int;
}
(** Observed-plane lifecycle stats of one instance's {!Health.t}. *)

type instance_stat = {
  i_id : int;
  i_batches : int;
  i_served : int;
  i_aborted : int;
  i_busy : int;  (** cycles spent executing batches (and health probes) *)
  i_utilization : float;  (** [i_busy] / makespan *)
  i_faults : int;  (** detected + silent faults over its requests *)
  i_degraded_at : int option;
      (** cycle it first left the healthy rotation *)
  i_health : health_stat option;  (** [Some] iff [config.health] was set *)
  i_totals : Sim.Counters.t;  (** summed counters of its served requests *)
}

type slo = {
  s_target : int;  (** the configured [slo_sojourn] *)
  s_pred_violations : int;
      (** served requests whose predicted sojourn exceeded the target —
          worker-invariant, counted in the tally *)
  s_observed_violations : int;
      (** served requests whose scheduled sojourn exceeded the target —
          moves with the fleet shape; always >= [s_pred_violations] *)
  s_pred_violation_rate : float;  (** predicted violations / served *)
}

type health_summary = {
  h_config : Health.config;  (** resolved config (autos filled in) *)
  h_pred_state : Health.state;  (** predicted plane's end-of-run state *)
  h_pred_transitions : int;
  h_pred_readmissions : int;
  h_pred_relapses : int;
  h_pred_probe_cycles : int;
  h_pred_fail_open : int;
      (** batches whose predicted dispatch found the predicted machine
          ineligible (the admission controller's fail-open estimate) *)
  h_shed : int;
      (** requests shed by health-aware admission (the ingress cap is
          halved while the predicted machine is out of rotation) *)
}
(** Predicted-plane health accounting — a pure function of the config,
    so every field is byte-identical at any [workers]/[jobs] and lands
    in the tally footer. Observed counterparts live in
    {!instance_stat.i_health} and {!report.r_fail_open}. *)

type report = {
  r_config : config;
  r_window : int;  (** resolved dispatch window (after auto-probing) *)
  r_mean_gap : int;  (** resolved Poisson gap; 0 in closed mode *)
  r_outcomes : (request * outcome) list;  (** in request order *)
  r_served : int;
  r_rejected : int;
  r_aborted : int;
  r_shed_rate : float;  (** rejected / requests *)
  r_service : percentiles;  (** per-request inference cycles (invariant) *)
  r_sojourn : percentiles;
      (** arrival-to-completion cycles (improves with fleet size) *)
  r_makespan : int;  (** last completion cycle *)
  r_throughput_rps : float;
      (** served requests per second of simulated time at the platform
          clock *)
  r_instances : instance_stat list;
  r_slo : slo option;  (** [Some] iff [slo_sojourn] was set *)
  r_health : health_summary option;  (** [Some] iff [health] was set *)
  r_fail_open : int;
      (** batches dispatched with {e no} eligible instance (the router
          fails open rather than stall) — fleet-shape dependent, on the
          sched track as [htvm_sched_fail_open_total] *)
  r_memo_hits : int;
      (** admitted requests served from a memoized execution (0 unless
          [memoize]) *)
  r_memo_misses : int;
      (** distinct inputs actually executed under memoization (0 unless
          [memoize]) *)
  r_metrics : Metrics.snapshot;
      (** the run's telemetry: admission/outcome counters, service and
          predicted-sojourn histograms, the per-window series and
          summed simulator counters on the cycles track (byte-identical
          at any [workers]/[jobs]); per-instance stats, makespan,
          throughput and observed SLO violations on the sched track. *)
}

(** Typed serving errors, shared by both surfaces: {!mt_run} returns
    them; the single-tenant path surfaces config violations through
    {!validate}. *)
type mt_error =
  | Unknown_model of { class_name : string; model : string }
      (** a class names a model absent from the registry *)
  | Unknown_class of { class_name : string; context : string }
      (** a trace line references a class the run does not configure *)
  | Bad_trace of { line : int; reason : string }
      (** unparseable arrival trace ([line = 0]: the file itself) *)
  | Bad_config of string  (** numeric/structural config violation *)

val mt_error_to_string : mt_error -> string

val validate : config -> (unit, mt_error) result
(** Diagnose a single-tenant config without running it: [Error
    (Bad_config msg)] for exactly the violations {!run} would raise
    [Invalid_argument msg] on (e.g. [memoize] under a non-empty fault
    plan). [htvmc serve] calls this first so a bad flag combination is
    a clear one-line error and a nonzero exit, not a backtrace. *)

val run :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  config ->
  Htvm.Compile.artifact ->
  graph:Ir.Graph.t ->
  report
(** Serve the configured request stream on a fleet of fresh instances.
    [graph] is the model the artifact was compiled from (it shapes the
    synthetic inputs). When [trace] is given, every dispatched batch is
    recorded as an interval on a per-instance track ([instance 0],
    [instance 1], ...), shed events on the [serve] track, and the
    per-window ingress occupancy as a [queue] counter track.

    The run always records telemetry ({!report.r_metrics}): into
    [metrics] when given — so one registry can carry compile-side and
    serve-side metrics, see {!Htvm.Compile.compile} — or into a private
    registry. Registration is strict, so a caller-supplied registry must
    not have hosted a serve run before.
    @raise Invalid_argument on a non-positive [workers], [max_batch],
    [queue_depth], [slo_sojourn], a negative [requests] or [input_mix],
    [memoize] combined with a non-empty fault [plan], a
    [degraded_instances] id outside [[0, workers)] or listed twice, an
    out-of-range [health] field (see {!Health.validate}), or [health]
    combined with [degrade_after]. *)

val tally : report -> string
(** The canonical functional ledger: one line per request (outcome,
    output digest, service cycles, fault counts) plus the
    service-latency histogram and outcome totals. Contains no
    instance assignments, waits or throughput — for a fixed [seed] it is
    byte-identical at any [workers] and [jobs], which `tools/verify.sh`
    enforces by diffing runs. *)

val summary : report -> string
(** Human-readable digest: throughput, latency percentiles, shed rate,
    per-instance utilization. *)

val to_json : report -> Trace.Json.t
(** Machine-readable report: everything in {!report}, including the
    worker-dependent serving metrics ([htvmc serve --json] and
    [BENCH_serve.json]). *)

(** {1 Multi-tenant serving}

    {!mt_run} hosts {e several} compiled artifacts behind one fleet. A
    {!model} registry maps names to artifacts; {!model_class}es describe
    request populations (which model, what latency SLO, what share of
    traffic); instances either pin one model each ({!Pinned}) or reload
    on demand ({!Swap}, charging [mt_swap_overhead] per model change).

    The single-model determinism architecture carries over wholesale:
    generation, ingress-cap admission, SLO shedding and batch assembly
    are pure functions of the seed (or of a replayed arrival trace), so
    the {!mt_tally} — per-request outcomes, per-class totals, the shed
    set — is byte-identical at any [mt_workers]/[mt_jobs]. Only the
    scheduling pass (pinning, hot swaps, per-instance clocks) sees the
    fleet, and it feeds the sched metrics track alone.

    SLO shedding works off {e predicted} sojourns: exact per-request
    service cycles plus a queueing-free dispatch model (window close +
    dispatch overhead + one cold model load under {!Swap} + the in-batch
    service prefix). Unlike the single-model predictor this is not a
    lower bound on the observed sojourn — a warm instance skips the
    reload the predictor always charges — it is the admission
    controller's cost model, applied identically at any fleet shape.

    The multi-tenant path runs fault-free: tenancy composes with the
    single-model fault machinery rather than duplicating it. *)

type model = {
  m_name : string;
  m_artifact : Htvm.Compile.artifact;
  m_graph : Ir.Graph.t;  (** shapes the synthetic inputs *)
}
(** A registry entry: one compiled model a fleet can host. *)

type model_class = {
  k_name : string;  (** class name; non-empty, no spaces (trace grammar) *)
  k_model : string;  (** registry name of the model this class runs *)
  k_slo : int option;
      (** per-class sojourn SLO in cycles; requests whose predicted
          sojourn exceeds it are shed with {!Mt_shed_slo}. [None]
          disables shedding for the class (a batch class). *)
  k_weight : int;  (** share of synthetic traffic (>= 1) *)
}

type trace_entry = {
  t_cycle : int;  (** arrival cycle (non-decreasing across a trace) *)
  t_class : string;  (** class name; validated against the run's classes *)
  t_seed : int;  (** payload seed for {!Models.Zoo.random_input} *)
  t_line : int;  (** source line, for error context *)
}
(** One parsed line of an arrival trace. *)

type mt_arrival =
  | Mt_closed  (** saturating backlog at cycle 0; never queue-sheds *)
  | Mt_poisson of { mean_gap : int }
      (** exponential gaps; [mean_gap <= 0] = auto (half the largest
          model's probe service time) *)
  | Mt_diurnal of { mean_gap : int; period : int }
      (** sinusoid-ish load: the gap mean sweeps from [mean_gap / 2]
          (peak) to [2 * mean_gap] (trough) over each [period] cycles;
          [period <= 0] = auto (8 dispatch windows) *)
  | Mt_bursty of { mean_gap : int; burst : int }
      (** [burst] requests arrive together, then an exponential idle
          gap of mean [burst * mean_gap] *)
  | Mt_replay of trace_entry list
      (** replay a recorded arrival trace verbatim: cycles, classes and
          payload seeds come from the file, [mt_requests] and [mt_seed]
          are ignored for generation *)

type placement =
  | Pinned
      (** instance [i] permanently hosts referenced model [i mod n];
          requires [mt_workers >= n] distinct referenced models. No swap
          cost is ever paid (or predicted). *)
  | Swap
      (** any instance serves any batch, reloading when the batch's
          model differs from the resident one ([mt_swap_overhead]
          cycles). The admission predictor charges one cold load per
          batch. *)

type mt_config = {
  mt_workers : int;
  mt_max_batch : int;
      (** requests per dispatch batch; [0] = autotune (see {!mt_run}) *)
  mt_queue_depth : int;  (** ingress cap per dispatch window *)
  mt_requests : int;  (** ignored under {!Mt_replay} *)
  mt_seed : int;
  mt_arrival : mt_arrival;
  mt_window : int;  (** [<= 0] = auto: the largest model's probe time *)
  mt_dispatch_overhead : int;
  mt_swap_overhead : int;  (** model reload cost in cycles *)
  mt_placement : placement;
  mt_jobs : int;  (** host domains; a wall-clock knob only *)
  mt_use_plan : bool;  (** route executions through {!Sim.Plan} *)
  mt_degraded_instances : int list;
      (** instance ids out of rotation from cycle 0. Without [mt_health]
          they stay out for the whole run; with it they walk the
          probation/readmission lifecycle. *)
  mt_health : Health.config option;
      (** per-instance health lifecycle (observed plane only — the
          multi-tenant path is fault-free, so machines only move on the
          boot flag and their own probe streams; auto fields resolve
          against the largest model's probe time as in {!config}). The
          {!mt_tally} is unaffected: lifecycle stats live in
          {!mt_instance_stat.mi_health}, {!mt_report.mt_fail_open} and
          the sched metrics track. *)
}

val mt_default : mt_config
(** [mt_workers = 4], [mt_max_batch = 8], [mt_queue_depth = 32],
    [mt_requests = 64], [mt_seed = 42], closed arrivals, auto window,
    1000-cycle dispatch overhead, 5000-cycle swap overhead, {!Swap}
    placement, [mt_jobs = 1], plan fast path on, no degraded instances,
    no health lifecycle. *)

type mt_request = {
  q_id : int;
  q_class : int;  (** index into the run's class list *)
  q_input_seed : int;
  q_arrival : int;
}

type mt_outcome =
  | Mt_served of {
      mo_instance : int;
      mo_batch : int;
      mo_start : int;
      mo_finish : int;
      mo_service : int;  (** worker-invariant *)
      mo_digest : string;  (** worker-invariant *)
      mo_pred_sojourn : int;  (** the admission predictor's estimate *)
    }
  | Mt_shed_queue of { mo_window : int }
      (** shed at the per-window ingress cap (arrival-stream-pure) *)
  | Mt_shed_slo of { mo_pred_sojourn : int }
      (** predicted sojourn broke the class SLO; the slot was freed for
          later arrivals in the same window (arrival-stream-pure) *)

type class_stat = {
  cs_name : string;
  cs_model : string;
  cs_slo : int option;
  cs_weight : int;
  cs_requests : int;
  cs_served : int;
  cs_shed_queue : int;
  cs_shed_slo : int;  (** = predicted SLO violations: shed at admission *)
  cs_observed_violations : int;
      (** served requests whose scheduled sojourn broke the SLO —
          fleet-shape dependent, sched track only *)
  cs_service : percentiles;
}

type mt_instance_stat = {
  mi_id : int;
  mi_batches : int;
  mi_served : int;
  mi_busy : int;
  mi_swaps : int;  (** model reloads this instance paid *)
  mi_utilization : float;
  mi_model : string option;  (** resident model at end of run *)
  mi_health : health_stat option;  (** [Some] iff [mt_health] was set *)
}

type mt_report = {
  mt_cfg : mt_config;
  mt_class_list : model_class list;
  mt_resolved_window : int;
  mt_resolved_gap : int;
  mt_batch : int;  (** resolved batch size (autotuned when [mt_max_batch = 0]) *)
  mt_outcomes : (mt_request * mt_outcome) list;  (** in request order *)
  mt_served : int;
  mt_shed_queue : int;
  mt_shed_slo : int;
  mt_swaps : int;  (** total model reloads across the fleet *)
  mt_class_stats : class_stat list;  (** in class-list order *)
  mt_service : percentiles;
  mt_sojourn : percentiles;
  mt_makespan : int;
  mt_throughput_rps : float;
      (** at the {e first} registered model's platform clock *)
  mt_fail_open : int;
      (** batches dispatched with no eligible instance in their
          placement pool (fleet-shape dependent, sched track) *)
  mt_instances : mt_instance_stat list;
  mt_metrics : Metrics.snapshot;
      (** cycles track: request/outcome totals, per-class counters
          ([htvm_mtserve_class_*_total{class=...}]) including predicted
          SLO violations, per-class service histograms, the per-window
          admission series, resolved batch size — all byte-identical at
          any [mt_workers]/[mt_jobs]. Sched track: observed per-class
          SLO violations, per-instance busy/served/swaps, makespan,
          throughput. *)
}

val mt_run :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  mt_config ->
  models:model list ->
  classes:model_class list ->
  (mt_report, mt_error) result
(** Serve a multi-class request stream over a fleet hosting [models].

    Pipeline: validate → probe each referenced model once (fault-free,
    seeded by [mt_seed]; forced only when window/gap auto-resolution
    needs it) → generate or replay arrivals → per-window ingress-cap
    admission → execute every admitted request on the [mt_jobs]-domain
    pool (order-preserving, so digests and service cycles are
    jobs-invariant) → SLO shed + per-model batch assembly in arrival
    order → schedule batches onto the fleet.

    With [mt_max_batch = 0] the batch size is autotuned: candidate
    sizes [1; 2; 4; 8; 16; 32] are scored on the predicted schedule —
    fewest SLO sheds, then lowest predicted total cost (per-batch
    dispatch + cold-load overheads, which wide batches amortize, plus
    summed predicted sojourns, which wide batches inflate), then the
    smaller size. A pure function of the arrival stream, so the chosen
    size is itself workers/jobs-invariant and is reported in
    {!mt_report.mt_batch} and the [htvm_mtserve_batch_size] gauge.

    All failures are typed: numeric violations — including an
    [mt_degraded_instances] id outside [[0, mt_workers)] or listed
    twice, and an out-of-range [mt_health] field — return [Error
    (Bad_config _)], an unresolvable class model [Error (Unknown_model
    _)], a trace naming an unconfigured class [Error (Unknown_class _)].
    Nothing in the multi-tenant path raises. *)

val render_arrival_trace : mt_report -> string
(** Serialize the run's arrival stream in the replayable trace format:

    {v
    htvm-serve-trace v1
    # comment
    <cycle> <class-name> <seed>
    v}

    Replaying this text through {!parse_arrival_trace} + {!Mt_replay}
    reproduces the run's tally byte-for-byte (at any fleet shape). *)

val parse_arrival_trace : string -> (trace_entry list, mt_error) result
(** Parse the trace grammar above. Rejects with [Bad_trace]: a missing
    or wrong header (line 1), a line without exactly three tokens,
    non-integer cycle/seed fields, negative cycles, and cycles that
    decrease. Blank lines and [#] comments are skipped. Class names are
    validated later, by {!mt_run}, against the run's class list. *)

val load_arrival_trace : string -> (trace_entry list, mt_error) result
(** Read and parse a trace file; IO failures map to [Bad_trace] with
    [line = 0]. *)

val mt_tally : mt_report -> string
(** The multi-tenant functional ledger: config + class headers, one
    line per request (class, outcome, digest, service, predicted
    sojourn), outcome totals, per-class stats and service percentiles.
    Contains the shed set and no instance assignments — byte-identical
    for a fixed seed (or replayed trace) at any [mt_workers]/[mt_jobs]. *)

val mt_summary : mt_report -> string
(** Human-readable digest: totals, per-class p50/p99 and SLO
    violations, per-instance utilization and swap counts. *)

val mt_to_json : mt_report -> Trace.Json.t
