(* Batched inference serving over a simulated DIANA fleet.

   The runtime is split so its determinism guarantee is structural
   rather than accidental:

   1. Generation + admission are pure functions of the config seed: the
      request stream (payload seeds, arrival cycles) comes from one
      Util.Rng stream, and the per-window ingress cap decides shedding
      from arrivals alone — never from how fast the fleet drains.
   2. Execution is a pure function of the request: each request runs on
      a fresh simulated machine under its own fault session (seed
      derived from plan seed + request id), fanned out over a Util.Pool
      whose map is order-preserving. Outputs, service cycles and fault
      tallies cannot depend on routing, fleet size or host parallelism.
   3. Scheduling is plain arithmetic over the execution records: batch
      assembly, earliest-free healthy routing, per-instance clocks,
      degradation bookkeeping and the trace all happen on the
      submitting domain. Only this layer sees the worker count, and
      only serving metrics (throughput, waits, utilization) flow out of
      it — the functional tally is assembled from layers 1 and 2.

   The health lifecycle (lib/health) keeps that split by running on two
   planes, mirroring the predicted/observed SLO accounting:

   - The *predicted* plane is one logical Health.t advanced along the
     queueing-free batch timeline (window closes, dispatch overheads,
     exact service cycles). It never sees the fleet shape, so the
     health-aware admission cap, the health-shed set, the predicted
     fail-open count, readmission totals and every htvm_health_*
     cycles-track counter stay byte-identical at any workers/jobs and
     may appear in the tally.
   - The *observed* plane is one Health.t per instance, fed by the
     faults of the batches actually routed to it. It decides routing
     eligibility, charges probe cycles to the probed instance, and
     surfaces only through the summary, the per-instance JSON and the
     sched metrics track — like makespan and throughput. *)

module C = Htvm.Compile
module J = Trace.Json

type arrival = Closed | Poisson of { mean_gap : int }

type config = {
  workers : int;
  max_batch : int;
  queue_depth : int;
  requests : int;
  seed : int;
  arrival : arrival;
  window : int;
  dispatch_overhead : int;
  plan : Fault.Plan.t;
  retry_budget : int;
  degrade_after : int option;
  degraded_instances : int list;
  jobs : int;
  slo_sojourn : int option;
  use_plan : bool;
  memoize : bool;
  input_mix : int;
  health : Health.config option;
}

let default =
  {
    workers = 4;
    max_batch = 8;
    queue_depth = 32;
    requests = 64;
    seed = 42;
    arrival = Closed;
    window = 0;
    dispatch_overhead = 1_000;
    plan = Fault.Plan.empty;
    retry_budget = 3;
    degrade_after = None;
    degraded_instances = [];
    jobs = 1;
    slo_sojourn = None;
    use_plan = true;
    memoize = false;
    input_mix = 0;
    health = None;
  }

type request = { r_id : int; r_input_seed : int; r_arrival : int }

type outcome =
  | Served of {
      o_instance : int;
      o_batch : int;
      o_start : int;
      o_finish : int;
      o_service : int;
      o_wait : int;
      o_digest : string;
      o_detected : int;
      o_silent : int;
      o_retries : int;
      o_pred_sojourn : int;
    }
  | Rejected of { o_window : int }
  | Aborted of { o_instance : int; o_batch : int; o_site : string; o_attempts : int }

type percentiles = {
  p_count : int;
  p_min : int;
  p_mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  p_max : int;
}

let percentiles_of xs =
  match List.sort compare xs with
  | [] -> { p_count = 0; p_min = 0; p_mean = 0.0; p50 = 0; p95 = 0; p99 = 0; p_max = 0 }
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let pick p =
        (* nearest rank in exact integer arithmetic: the smallest rank
           with 100 * rank >= p * n, i.e. ceil(p*n/100) — no float
           rounding at bucket edges (n = 100 must give rank p, not
           p ± 1). *)
        let rank = ((p * n) + 99) / 100 in
        a.(Util.Ints.clamp ~lo:0 ~hi:(n - 1) (rank - 1))
      in
      {
        p_count = n;
        p_min = a.(0);
        p_mean = float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int n;
        p50 = pick 50;
        p95 = pick 95;
        p99 = pick 99;
        p_max = a.(n - 1);
      }

(* Observed-plane lifecycle stats of one instance's Health.t machine. *)
type health_stat = {
  hs_state : Health.state;
  hs_transitions : int;
  hs_readmissions : int;
  hs_relapses : int;
  hs_probes_passed : int;
  hs_probes_failed : int;
  hs_probe_cycles : int;
}

type instance_stat = {
  i_id : int;
  i_batches : int;
  i_served : int;
  i_aborted : int;
  i_busy : int;
  i_utilization : float;
  i_faults : int;
  i_degraded_at : int option;
  i_health : health_stat option;
  i_totals : Sim.Counters.t;
}

(* SLO accounting. Predicted violations compare the queueing-free
   sojourn — dispatch window close + dispatch overhead + in-batch
   service prefix, minus arrival — against the target, so they are a
   pure function of the seed (batch assembly precedes routing) and live
   in the tally. Observed violations compare the scheduled finish and
   legitimately move with the fleet shape. Predicted sojourn is a lower
   bound on observed sojourn, so predicted violations are a subset. *)
type slo = {
  s_target : int;
  s_pred_violations : int;
  s_observed_violations : int;
  s_pred_violation_rate : float;  (* predicted violations / served *)
}

(* Health-lifecycle accounting. The h_pred_* fields come from the
   predicted plane (workers/jobs-invariant, in the tally); h_shed is the
   health-aware admission's shed count (same plane). The observed
   counterparts live in instance_stat.i_health and r_fail_open. *)
type health_summary = {
  h_config : Health.config;  (* resolved: autos filled from the probe *)
  h_pred_state : Health.state;
  h_pred_transitions : int;
  h_pred_readmissions : int;
  h_pred_relapses : int;
  h_pred_probe_cycles : int;
  h_pred_fail_open : int;
  h_shed : int;
}

type report = {
  r_config : config;
  r_window : int;
  r_mean_gap : int;
  r_outcomes : (request * outcome) list;
  r_served : int;
  r_rejected : int;
  r_aborted : int;
  r_shed_rate : float;
  r_service : percentiles;
  r_sojourn : percentiles;
  r_makespan : int;
  r_throughput_rps : float;
  r_instances : instance_stat list;
  r_slo : slo option;
  r_health : health_summary option;
  r_fail_open : int;  (* observed fail-open dispatches (fleet-shaped) *)
  r_memo_hits : int;
  r_memo_misses : int;
  r_metrics : Metrics.snapshot;
}

(* --- generation ------------------------------------------------------- *)

(* One exponential inter-arrival gap. The uniform draw is an integer
   grid point, so the stream is reproducible without trusting float
   rounding across draws. *)
let exp_gap rng ~mean =
  let u = (float_of_int (Util.Rng.int rng 1_000_000) +. 1.0) /. 1_000_001.0 in
  max 0 (int_of_float (-.float_of_int mean *. log u))

let generate cfg ~mean_gap =
  let rng = Util.Rng.create cfg.seed in
  (* Input-mix pool: [input_mix = 0] keeps the historical fully-unique
     stream byte-for-byte; [input_mix = k > 0] folds every per-request
     draw into a pool of k seeds from a derived stream. The fold happens
     after the main draw, so arrivals are identical at any mix. *)
  let pool =
    if cfg.input_mix <= 0 then [||]
    else
      let prng = Util.Rng.create (cfg.seed + 999_983) in
      Array.init cfg.input_mix (fun _ -> Util.Rng.int_in prng 1 1_000_000)
  in
  let clock = ref 0 in
  List.init cfg.requests (fun k ->
      let draw = Util.Rng.int_in rng 1 1_000_000 in
      let input_seed =
        if cfg.input_mix <= 0 then draw else pool.(draw mod cfg.input_mix)
      in
      let arrival =
        match cfg.arrival with
        | Closed -> 0
        | Poisson _ ->
            clock := !clock + exp_gap rng ~mean:mean_gap;
            !clock
      in
      { r_id = k; r_input_seed = input_seed; r_arrival = arrival })

(* --- execution -------------------------------------------------------- *)

let digest_tensor t =
  let b = Buffer.create (16 + (Tensor.numel t * 4)) in
  Buffer.add_string b (Tensor.Dtype.to_string (Tensor.dtype t));
  Buffer.add_char b '|';
  Array.iter
    (fun d ->
      Buffer.add_string b (string_of_int d);
      Buffer.add_char b 'x')
    (Tensor.shape t);
  Buffer.add_char b '|';
  for i = 0 to Tensor.numel t - 1 do
    Buffer.add_string b (string_of_int (Tensor.get_flat t i));
    Buffer.add_char b ','
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Each request owns an independent fault campaign: same rules, a seed
   derived from the plan seed and the request id. This is what divorces
   a request's faults from the instance that happens to serve it. *)
let request_plan plan r_id =
  { plan with Fault.Plan.seed = plan.Fault.Plan.seed + ((r_id + 1) * 1_000_003) }

type exec =
  | Done of {
      e_digest : string;
      e_service : int;
      e_detected : int;
      e_silent : int;
      e_retries : int;
      e_totals : Sim.Counters.t;
    }
  | Abort of { a_site : string; a_attempts : int; a_detected : int; a_silent : int }

let execute cfg artifact ~graph (r : request) =
  let inputs = Models.Zoo.random_input ~seed:r.r_input_seed graph in
  let session =
    if Fault.Plan.is_empty cfg.plan then None
    else Some (Fault.Session.create (request_plan cfg.plan r.r_id))
  in
  let fault_stats () =
    match session with
    | None -> (0, 0, 0)
    | Some s ->
        let st = Fault.Session.stats s in
        (st.Fault.Session.detected, st.Fault.Session.silent, st.Fault.Session.retries)
  in
  match
    C.run ?faults:session ~retry_budget:cfg.retry_budget ~use_plan:cfg.use_plan
      artifact ~inputs
  with
  | out, report ->
      let detected, silent, retries = fault_stats () in
      Done
        {
          e_digest = digest_tensor out;
          e_service = C.full_cycles report;
          e_detected = detected;
          e_silent = silent;
          e_retries = retries;
          e_totals = report.Sim.Machine.totals;
        }
  | exception Fault.Session.Unrecovered { site; attempts } ->
      let detected, silent, _ = fault_stats () in
      Abort { a_site = site; a_attempts = attempts; a_detected = detected; a_silent = silent }

(* --- scheduling ------------------------------------------------------- *)

type instance = {
  id : int;
  mutable free_at : int;
  mutable busy : int;
  mutable served : int;
  mutable aborted : int;
  mutable batches : int;
  mutable faults : int;
  mutable degraded_at : int option;
  mutable probe_cyc : int;  (* observed-plane probe cycles charged *)
  hm : Health.t option;  (* observed-plane machine (health mode only) *)
  totals : Sim.Counters.t;
}

let healthy_at inst t =
  match inst.hm with
  | Some m -> Health.eligible m
  | None -> (
      match inst.degraded_at with None -> true | Some d -> t < d)

(* Earliest-free eligible instance, lowest id on ties. Falls open to the
   whole fleet when every instance is out of the rotation: a fully
   degraded fleet keeps serving rather than shedding everything. The
   second component reports that fail-open, for the dedicated counter. *)
let route instances t =
  let all = Array.to_list instances in
  let eligible = List.filter (fun i -> healthy_at i t) all in
  let fail_open = eligible = [] in
  let pool = if fail_open then all else eligible in
  ( List.fold_left
      (fun best i -> if i.free_at < best.free_at then i else best)
      (List.hd pool) (List.tl pool),
    fail_open )

(* Fill a health config's auto fields from the probe request's service
   time: probation two probe-services, probes every quarter service
   costing a tenth, escalation capped at 8 probation windows. A pure
   function of (config, artifact, seed), like the window auto. *)
let resolve_health hc ~probe_cycles =
  let probation =
    if hc.Health.probation_window > 0 then hc.Health.probation_window
    else 2 * probe_cycles
  in
  let resolved =
    {
      hc with
      Health.probation_window = probation;
      probe_interval =
        (if hc.Health.probe_interval >= 0 then hc.Health.probe_interval
         else max 1 (probe_cycles / 4));
      probe_cost =
        (if hc.Health.probe_cost > 0 then hc.Health.probe_cost
         else max 1 (probe_cycles / 10));
      backoff_cap =
        (if hc.Health.backoff_cap > 0 then hc.Health.backoff_cap
         else 8 * probation);
    }
  in
  match Health.validate resolved with
  | Ok () -> Ok resolved
  | Error msg -> Error msg

let health_stat_of m =
  {
    hs_state = Health.state m;
    hs_transitions = List.length (Health.transitions m);
    hs_readmissions = Health.readmissions m;
    hs_relapses = Health.relapses m;
    hs_probes_passed = Health.probes_passed m;
    hs_probes_failed = Health.probes_failed m;
    hs_probe_cycles = Health.probe_cycles m;
  }

(* Split [xs] into consecutive chunks of at most [n]. *)
let rec chunk n xs =
  if xs = [] then []
  else
    let rec take k acc rest =
      match rest with
      | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
      | _ -> (List.rev acc, rest)
    in
    let head, rest = take n [] xs in
    head :: chunk n rest

(* Typed errors, shared between the single-tenant and multi-tenant
   surfaces: the mt path returns them from [mt_run]; the single-tenant
   path diagnoses config violations through [validate] (callers like
   [htvmc serve] print the message and exit nonzero) while [run] itself
   keeps its raising contract for programmatic misuse. *)
type mt_error =
  | Unknown_model of { class_name : string; model : string }
  | Unknown_class of { class_name : string; context : string }
  | Bad_trace of { line : int; reason : string }
  | Bad_config of string

let mt_error_to_string = function
  | Unknown_model { class_name; model } ->
      Printf.sprintf "class %S names model %S, which is not in the registry"
        class_name model
  | Unknown_class { class_name; context } ->
      Printf.sprintf "%s references class %S, which is not configured" context
        class_name
  | Bad_trace { line; reason } ->
      Printf.sprintf "arrival trace line %d: %s" line reason
  | Bad_config msg -> msg

(* Single-tenant config validation. Raises [Invalid_argument] — [run]'s
   historical contract — with [validate] below wrapping the same checks
   into a typed result. *)
let check_config cfg =
  if cfg.workers < 1 then invalid_arg "Serve.run: workers must be >= 1";
  if cfg.max_batch < 1 then invalid_arg "Serve.run: max_batch must be >= 1";
  if cfg.queue_depth < 1 then invalid_arg "Serve.run: queue_depth must be >= 1";
  if cfg.requests < 0 then invalid_arg "Serve.run: requests must be >= 0";
  (match cfg.slo_sojourn with
  | Some t when t < 1 -> invalid_arg "Serve.run: slo_sojourn must be >= 1"
  | _ -> ());
  if cfg.input_mix < 0 then invalid_arg "Serve.run: input_mix must be >= 0";
  (* Degraded ids must name real instances, once each — out-of-range or
     duplicate ids were silently ignored before and always indicate a
     config bug (a typo'd fleet size, a doubled flag). *)
  (match
     List.find_opt
       (fun id -> id < 0 || id >= cfg.workers)
       cfg.degraded_instances
   with
  | Some id ->
      invalid_arg
        (Printf.sprintf
           "Serve.run: degraded instance id %d out of range [0, %d)" id
           cfg.workers)
  | None -> ());
  if
    List.length (List.sort_uniq compare cfg.degraded_instances)
    <> List.length cfg.degraded_instances
  then invalid_arg "Serve.run: degraded instance ids must be distinct";
  (* The health lifecycle replaces the one-way degrade_after flag; the
     two accounting schemes would fight over instance eligibility. *)
  if cfg.health <> None && cfg.degrade_after <> None then
    invalid_arg "Serve.run: health and degrade_after are mutually exclusive";
  (* Memoization reuses one execution across identical inputs, which is
     only sound when executions are input-pure — per-request fault
     sessions make them input-impure by design. *)
  if cfg.memoize && not (Fault.Plan.is_empty cfg.plan) then
    invalid_arg "Serve.run: memoize requires an empty fault plan"

let validate cfg =
  match check_config cfg with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error (Bad_config msg)

let run ?trace ?metrics cfg artifact ~graph =
  check_config cfg;
  (* The run always records into a registry — the caller's (so a serve
     dump can carry the compile-side metrics too) or a private one — and
     the report carries its snapshot. Registration is strict, so a
     caller-supplied registry must not have seen a serve run before. *)
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  let m_requests =
    Metrics.counter reg ~help:"Requests generated from the seed."
      "htvm_serve_requests_total"
  in
  let m_admitted =
    Metrics.counter reg ~help:"Requests admitted past the per-window ingress cap."
      "htvm_serve_admitted_total"
  in
  let m_shed =
    Metrics.counter reg ~help:"Requests shed at admission." "htvm_serve_shed_total"
  in
  let m_served =
    Metrics.counter reg ~help:"Requests served to completion."
      "htvm_serve_served_total"
  in
  let m_aborted =
    Metrics.counter reg ~help:"Requests aborted after exhausting the retry budget."
      "htvm_serve_aborted_total"
  in
  let m_faults_detected =
    Metrics.counter reg ~help:"Detected faults across all request executions."
      "htvm_serve_faults_detected_total"
  in
  let m_faults_silent =
    Metrics.counter reg ~help:"Silent corruptions across all request executions."
      "htvm_serve_faults_silent_total"
  in
  let m_retries =
    Metrics.counter reg ~help:"Retries across all request executions."
      "htvm_serve_retries_total"
  in
  let m_memo_hits =
    Metrics.counter reg
      ~help:"Admitted requests whose output was reused from an identical input."
      "htvm_serve_memo_hits_total"
  in
  let m_memo_misses =
    Metrics.counter reg
      ~help:"Distinct inputs actually executed under memoization."
      "htvm_serve_memo_misses_total"
  in
  let cycle_buckets =
    [ 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000; 3_000_000;
      10_000_000 ]
  in
  let m_service =
    Metrics.histogram reg ~buckets:cycle_buckets
      ~help:"Per-request service cycles on a dedicated machine."
      "htvm_serve_service_cycles"
  in
  let m_pred_sojourn =
    Metrics.histogram reg ~buckets:cycle_buckets
      ~help:"Predicted (queueing-free) sojourn cycles of served requests."
      "htvm_serve_pred_sojourn_cycles"
  in
  let m_slo_pred =
    Metrics.counter reg
      ~help:"Served requests whose predicted sojourn exceeded the SLO target."
      "htvm_serve_slo_pred_violations_total"
  in
  let m_window =
    Metrics.series reg
      ~columns:
        [ "arrivals"; "admitted"; "shed"; "slo_pred_violations";
          "slo_pred_violation_rate" ]
      ~help:"Per dispatch window: admission and predicted-SLO accounting."
      "htvm_serve_window"
  in
  let m_sim =
    List.map
      (fun (name, _) ->
        ( name,
          Metrics.counter reg
            ~help:("Simulator counter " ^ name ^ " summed over served requests.")
            ("htvm_sim_" ^ name ^ "_total") ))
      (Sim.Counters.fields (Sim.Counters.create ()))
  in
  let m_slo_observed =
    Metrics.counter reg ~track:Metrics.Sched
      ~help:"Served requests whose observed sojourn exceeded the SLO target."
      "htvm_serve_slo_observed_violations_total"
  in
  let m_sched_window =
    Metrics.series reg ~track:Metrics.Sched
      ~columns:[ "in_flight"; "free_max"; "served_cum"; "throughput_rps" ]
      ~help:"Fleet state at each dispatch-window close."
      "htvm_sched_window"
  in
  (* Fail-open accounting is split like the SLO counters: the dedicated
     htvm_serve_fail_open_total counts predicted-plane fail-opens
     (cycles track, worker-invariant, 0 without health); the observed
     fleet-shaped count lands on the sched track. *)
  let m_fail_open_pred =
    Metrics.counter reg
      ~help:
        "Batches predicted to dispatch with no healthy capacity \
         (fail-open), on the predicted health plane."
      "htvm_serve_fail_open_total"
  in
  let m_health_shed =
    Metrics.counter reg
      ~help:
        "Requests shed by health-aware admission while the predicted \
         plane was out of the rotation."
      "htvm_serve_health_shed_total"
  in
  let m_fail_open_observed =
    Metrics.counter reg ~track:Metrics.Sched
      ~help:
        "Scheduled batches dispatched with every instance out of the \
         healthy rotation (fail-open)."
      "htvm_sched_fail_open_total"
  in
  let health_pair_labels (f, t) =
    [ ("from", Health.state_label f); ("to", Health.state_label t) ]
  in
  let m_health_pred_transitions =
    match cfg.health with
    | None -> []
    | Some _ ->
        List.map
          (fun pair ->
            ( pair,
              Metrics.counter reg ~labels:(health_pair_labels pair)
                ~help:"Predicted-plane health transitions by (from, to)."
                "htvm_health_pred_transitions_total" ))
          Health.legal_pairs
  in
  let m_health_pred_counter name help =
    match cfg.health with
    | None -> None
    | Some _ -> Some (Metrics.counter reg ~help name)
  in
  let m_health_pred_readmissions =
    m_health_pred_counter "htvm_health_pred_readmissions_total"
      "Predicted-plane readmissions to the healthy rotation."
  in
  let m_health_pred_relapses =
    m_health_pred_counter "htvm_health_pred_relapses_total"
      "Predicted-plane entries into the degraded state."
  in
  let m_health_pred_probe_cycles =
    m_health_pred_counter "htvm_health_pred_probe_cycles_total"
      "Predicted-plane cycles spent on health-check probes."
  in
  let m_health_observed_transitions =
    match cfg.health with
    | None -> []
    | Some _ ->
        List.map
          (fun pair ->
            ( pair,
              Metrics.counter reg ~track:Metrics.Sched
                ~labels:(health_pair_labels pair)
                ~help:
                  "Observed per-instance health transitions by (from, \
                   to), summed over the fleet."
                "htvm_health_observed_transitions_total" ))
          Health.legal_pairs
  in
  (* Auto window / gap probe: one fault-free execution of a seed-derived
     payload. A pure function of (artifact, seed) — independent of the
     fleet size, so auto values never leak worker count into the
     arrival process. *)
  let probe =
    lazy
      (let inputs = Models.Zoo.random_input ~seed:cfg.seed graph in
       let _, rep = C.run artifact ~inputs in
       max 1 (C.full_cycles rep))
  in
  let mean_gap =
    match cfg.arrival with
    | Closed -> 0
    | Poisson { mean_gap } ->
        if mean_gap > 0 then mean_gap else max 1 (Lazy.force probe / 2)
  in
  let window =
    match cfg.arrival with
    | Closed -> 0
    | Poisson _ -> if cfg.window > 0 then cfg.window else Lazy.force probe
  in
  let health_cfg =
    match cfg.health with
    | None -> None
    | Some hc -> (
        match resolve_health hc ~probe_cycles:(Lazy.force probe) with
        | Ok resolved -> Some resolved
        | Error msg -> invalid_arg ("Serve.run: " ^ msg))
  in
  let requests = generate cfg ~mean_gap in
  (* Admission: per dispatch window, the first [queue_depth] arrivals
     are buffered, the rest shed. Requests are already in arrival order
     (ids break ties), so one left-to-right scan decides. *)
  let outcomes = Array.make cfg.requests None in
  let admitted =
    match cfg.arrival with
    | Closed -> List.map (fun r -> (0, r)) requests
    | Poisson _ ->
        let in_window = Hashtbl.create 16 in
        List.filter_map
          (fun r ->
            let w = r.r_arrival / window in
            let n = Option.value ~default:0 (Hashtbl.find_opt in_window w) in
            if n >= cfg.queue_depth then begin
              outcomes.(r.r_id) <- Some (Rejected { o_window = w });
              Trace.interval trace ~track:"serve" ~cat:"serve" ~ts:r.r_arrival
                ~dur:0
                ~args:[ ("request", J.Int r.r_id); ("window", J.Int w) ]
                "shed";
              (* Re-sample the occupancy at the shed point so the counter
                 track shows the plateau pressing against the cap. *)
              Trace.counter trace ~track:"queue" ~cat:"serve" ~ts:r.r_arrival
                ~value:n "queue_depth";
              None
            end
            else begin
              Hashtbl.replace in_window w (n + 1);
              Trace.counter trace ~track:"queue" ~cat:"serve" ~ts:r.r_arrival
                ~value:(n + 1) "queue_depth";
              Some (w, r)
            end)
          requests
  in
  (* Execute every admitted request on the pool. Order-preserving map +
     per-request fault sessions keep this identical at any [jobs]. *)
  let memo_hits = ref 0 and memo_misses = ref 0 in
  let execs =
    if not cfg.memoize then
      Util.Pool.with_pool ~jobs:cfg.jobs (fun pool ->
          Util.Pool.map pool
            (fun (_, r) -> execute cfg artifact ~graph r)
            admitted)
    else begin
      (* Memoization: dedupe admitted requests by input digest before the
         fan-out, execute one representative per distinct input, share its
         result. Executions are input-pure here (empty fault plan is
         enforced above), so the tally is byte-identical with and without
         memoization — only hit/miss telemetry and wall time move. *)
      let input_digest r =
        let inputs = Models.Zoo.random_input ~seed:r.r_input_seed graph in
        String.concat "+"
          (List.map (fun (n, t) -> n ^ ":" ^ digest_tensor t) inputs)
      in
      let keys = List.map (fun (_, r) -> input_digest r) admitted in
      let seen = Hashtbl.create 16 in
      let reps =
        List.filter_map
          (fun (item, key) ->
            if Hashtbl.mem seen key then begin
              incr memo_hits;
              None
            end
            else begin
              Hashtbl.add seen key ();
              incr memo_misses;
              Some (key, item)
            end)
          (List.combine admitted keys)
      in
      let rep_execs =
        Util.Pool.with_pool ~jobs:cfg.jobs (fun pool ->
            Util.Pool.map pool
              (fun (_, (_, r)) -> execute cfg artifact ~graph r)
              reps)
      in
      let table = Hashtbl.create 16 in
      List.iter2 (fun (key, _) e -> Hashtbl.replace table key e) reps rep_execs;
      List.map (fun key -> Hashtbl.find table key) keys
    end
  in
  let work = List.combine admitted execs in
  (* Batch assembly: chunk each window's admitted requests. *)
  let windows =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (((w, _), _) as item) ->
        if not (Hashtbl.mem tbl w) then begin
          Hashtbl.add tbl w (ref []);
          order := w :: !order
        end;
        let cell = Hashtbl.find tbl w in
        cell := item :: !cell)
      work;
    List.rev_map (fun w -> (w, List.rev !(Hashtbl.find tbl w))) !order |> List.rev
  in
  (* Predicted (queueing-free) sojourn + the predicted health plane, one
     forward pass in window order. Every batch is predicted to dispatch
     the moment its window closes onto an idle machine; batch assembly
     happens before routing, so this pass never sees the fleet shape —
     pred_sojourn is the deterministic lower bound the SLO tally counts
     against, and it never exceeds the scheduled sojourn (the real start
     is the same expression with instance availability maxed in).

     The health plane rides the same pass: one logical machine advanced
     to each window open (admission consults it: the effective ingress
     cap halves while it is out of the rotation) and to each predicted
     dispatch (an ineligible dispatch is a predicted fail-open), then
     fed the batch's fault count at the predicted finish. In closed mode
     there are no windows, so the machine advances along the serialized
     batch cursor instead; pred_sojourn keeps its historical zero-based
     timing either way. *)
  let pred_health =
    Option.map
      (fun hc ->
        Health.create
          ~degraded_at_start:(cfg.degraded_instances <> [])
          hc ~instance:(-1))
      health_cfg
  in
  let pred_fail_open = ref 0 and health_shed = ref 0 in
  let pred_sojourn = Array.make cfg.requests 0 in
  let pclock = ref 0 in
  let process_window (w, items) =
    let items =
      match (pred_health, cfg.arrival) with
      | Some pm, Poisson _ ->
          ignore (Health.advance pm ~now:(w * window));
          if Health.eligible pm then items
          else begin
            let cap = max 1 (cfg.queue_depth / 2) in
            let rec split k acc = function
              | x :: rest when k > 0 -> split (k - 1) (x :: acc) rest
              | rest -> (List.rev acc, rest)
            in
            let kept, dropped = split cap [] items in
            List.iter
              (fun ((_, r), _) ->
                incr health_shed;
                outcomes.(r.r_id) <- Some (Rejected { o_window = w });
                Trace.interval trace ~track:"serve" ~cat:"serve"
                  ~ts:r.r_arrival ~dur:0
                  ~args:[ ("request", J.Int r.r_id); ("window", J.Int w) ]
                  "health-shed")
              dropped;
            kept
          end
      | _ -> items
    in
    let wbatches = chunk cfg.max_batch items in
    List.iter
      (fun b ->
        let dispatch_t =
          match cfg.arrival with Closed -> 0 | Poisson _ -> (w + 1) * window
        in
        let pdispatch =
          match cfg.arrival with Closed -> !pclock | Poisson _ -> dispatch_t
        in
        (match pred_health with
        | Some pm ->
            ignore (Health.advance pm ~now:pdispatch);
            if not (Health.eligible pm) then incr pred_fail_open
        | None -> ());
        let cursor = ref (dispatch_t + cfg.dispatch_overhead) in
        let pcursor = ref (pdispatch + cfg.dispatch_overhead) in
        let faults = ref 0 in
        List.iter
          (fun ((_, r), exec) ->
            match exec with
            | Done e ->
                cursor := !cursor + e.e_service;
                pcursor := !pcursor + e.e_service;
                pred_sojourn.(r.r_id) <- !cursor - r.r_arrival;
                faults := !faults + e.e_detected + e.e_silent
            | Abort a -> faults := !faults + a.a_detected + a.a_silent)
          b;
        (match pred_health with
        | Some pm -> Health.observe_faults pm ~now:!pcursor !faults
        | None -> ());
        pclock := !pcursor)
      wbatches;
    List.map (fun b -> (w, b)) wbatches
  in
  let batches = List.concat_map process_window windows in
  (* Health shedding may have dropped executions from the stream; only
     the work that survived to batch assembly counts downstream. *)
  let kept_work = List.concat_map snd batches in
  let instances =
    Array.init cfg.workers (fun id ->
        let boot_degraded = List.mem id cfg.degraded_instances in
        {
          id;
          free_at = 0;
          busy = 0;
          served = 0;
          aborted = 0;
          batches = 0;
          faults = 0;
          degraded_at =
            (* with health, filled post-run from the machine's log *)
            (if boot_degraded && health_cfg = None then Some 0 else None);
          probe_cyc = 0;
          hm =
            Option.map
              (fun hc ->
                Health.create ~degraded_at_start:boot_degraded hc ~instance:id)
              health_cfg;
          totals = Sim.Counters.create ();
        })
  in
  let freq_hz =
    float_of_int artifact.C.cfg.C.platform.Arch.Platform.freq_mhz *. 1.0e6
  in
  (* Sched-track window sampling: fleet state when a dispatch window
     closes (batches arrive in window order, so a window change means
     the previous one is fully scheduled). *)
  let served_running = ref 0 in
  let open_window = ref None in
  let sample_sched w =
    let free_max = Array.fold_left (fun acc i -> max acc i.free_at) 0 instances in
    let ts =
      match cfg.arrival with Closed -> free_max | Poisson _ -> (w + 1) * window
    in
    let in_flight =
      Array.fold_left (fun acc i -> acc + if i.free_at > ts then 1 else 0) 0 instances
    in
    let throughput =
      if free_max = 0 then 0.0
      else float_of_int !served_running /. (float_of_int free_max /. freq_hz)
    in
    Metrics.sample m_sched_window ~ts
      [ float_of_int in_flight; float_of_int free_max;
        float_of_int !served_running; throughput ]
  in
  let observed_fail_open = ref 0 in
  (* Process every instance's pending health events (cooldown expiry,
     probes — all scheduled at or before [now], so they never delay a
     batch start) and charge the probe cycles to the probed instance. *)
  let advance_machines now =
    Array.iter
      (fun i ->
        match i.hm with
        | None -> ()
        | Some m ->
            let pc = Health.advance m ~now in
            if pc > 0 then begin
              i.busy <- i.busy + pc;
              i.probe_cyc <- i.probe_cyc + pc
            end)
      instances
  in
  List.iteri
    (fun batch_idx (w, items) ->
      (match !open_window with
      | Some prev when prev <> w -> sample_sched prev
      | _ -> ());
      open_window := Some w;
      let dispatch_t =
        match cfg.arrival with
        | Closed ->
            (* backlog model: the router hands out the next batch as soon
               as any instance frees *)
            Array.fold_left (fun acc i -> min acc i.free_at) max_int instances
        | Poisson _ -> (w + 1) * window
      in
      advance_machines dispatch_t;
      let inst, fail_open = route instances dispatch_t in
      if fail_open then incr observed_fail_open;
      let start = max dispatch_t inst.free_at in
      let cursor = ref (start + cfg.dispatch_overhead) in
      let batch_faults = ref 0 in
      List.iter
        (fun ((_, r), exec) ->
          match exec with
          | Done e ->
              outcomes.(r.r_id) <-
                Some
                  (Served
                     {
                       o_instance = inst.id;
                       o_batch = batch_idx;
                       o_start = !cursor;
                       o_finish = !cursor + e.e_service;
                       o_service = e.e_service;
                       o_wait = !cursor - r.r_arrival;
                       o_digest = e.e_digest;
                       o_detected = e.e_detected;
                       o_silent = e.e_silent;
                       o_retries = e.e_retries;
                       o_pred_sojourn = pred_sojourn.(r.r_id);
                     });
              cursor := !cursor + e.e_service;
              served_running := !served_running + 1;
              inst.served <- inst.served + 1;
              inst.faults <- inst.faults + e.e_detected + e.e_silent;
              batch_faults := !batch_faults + e.e_detected + e.e_silent;
              Sim.Counters.add inst.totals e.e_totals
          | Abort a ->
              outcomes.(r.r_id) <-
                Some
                  (Aborted
                     {
                       o_instance = inst.id;
                       o_batch = batch_idx;
                       o_site = a.a_site;
                       o_attempts = a.a_attempts;
                     });
              inst.aborted <- inst.aborted + 1;
              inst.faults <- inst.faults + a.a_detected + a.a_silent;
              batch_faults := !batch_faults + a.a_detected + a.a_silent)
        items;
      let finish = !cursor in
      Trace.interval trace
        ~track:(Printf.sprintf "instance %d" inst.id)
        ~cat:"serve" ~ts:start ~dur:(finish - start)
        ~args:
          [
            ("batch", J.Int batch_idx);
            ("window", J.Int w);
            ("requests", J.Int (List.length items));
          ]
        (Printf.sprintf "batch %d (%d req)" batch_idx (List.length items));
      inst.free_at <- finish;
      inst.busy <- inst.busy + (finish - start);
      inst.batches <- inst.batches + 1;
      (match inst.hm with
      | Some m -> Health.observe_faults m ~now:finish !batch_faults
      | None -> (
          match (cfg.degrade_after, inst.degraded_at) with
          | Some threshold, None when inst.faults >= threshold ->
              inst.degraded_at <- Some finish;
              Trace.interval trace
                ~track:(Printf.sprintf "instance %d" inst.id)
                ~cat:"serve" ~ts:finish ~dur:0
                ~args:[ ("faults", J.Int inst.faults) ]
                "degraded"
          | _ -> ())))
    batches;
  (match !open_window with Some w -> sample_sched w | None -> ());
  (* Drain the observed plane to the end of the run: probes scheduled
     before the last completion still land, then each machine's log
     yields the instance's first-degradation cycle (the JSON/summary
     field the one-way flag used to fill) and the trace events. *)
  (match health_cfg with
  | None -> ()
  | Some _ ->
      let fleet_end =
        Array.fold_left (fun acc i -> max acc i.free_at) 0 instances
      in
      advance_machines fleet_end;
      Array.iter
        (fun i ->
          match i.hm with
          | None -> ()
          | Some m ->
              i.degraded_at <-
                List.find_opt
                  (fun tr -> tr.Health.tr_to = Health.Degraded)
                  (Health.transitions m)
                |> Option.map (fun tr -> tr.Health.tr_at);
              List.iter
                (fun tr ->
                  Trace.interval trace
                    ~track:(Printf.sprintf "instance %d" i.id)
                    ~cat:"health" ~ts:tr.Health.tr_at ~dur:0
                    ~args:
                      [
                        ("from", J.Str (Health.state_label tr.Health.tr_from));
                        ("to", J.Str (Health.state_label tr.Health.tr_to));
                        ("cause", J.Str (Health.cause_label tr.Health.tr_cause));
                      ]
                    (Printf.sprintf "health %s"
                       (Health.state_label tr.Health.tr_to)))
                (Health.transitions m))
        instances);
  (* --- aggregation --- *)
  let outcomes =
    List.map
      (fun r ->
        match outcomes.(r.r_id) with
        | Some o -> (r, o)
        | None -> assert false (* every request is admitted, shed or aborted *))
      requests
  in
  let service_list =
    List.filter_map
      (function _, Served { o_service; _ } -> Some o_service | _ -> None)
      outcomes
  in
  let sojourn_list =
    List.filter_map
      (function
        | r, Served { o_finish; _ } -> Some (o_finish - r.r_arrival) | _ -> None)
      outcomes
  in
  let served = List.length service_list in
  let rejected =
    List.length (List.filter (function _, Rejected _ -> true | _ -> false) outcomes)
  in
  let aborted =
    List.length (List.filter (function _, Aborted _ -> true | _ -> false) outcomes)
  in
  let makespan = Array.fold_left (fun acc i -> max acc i.free_at) 0 instances in
  let throughput =
    if makespan = 0 then 0.0
    else float_of_int served /. (float_of_int makespan /. freq_hz)
  in
  (* --- metrics + SLO accounting (cycles track first, then sched) --- *)
  let violates p = match cfg.slo_sojourn with Some t -> p > t | None -> false in
  Metrics.inc m_requests cfg.requests;
  Metrics.inc m_admitted (cfg.requests - rejected);
  Metrics.inc m_shed rejected;
  Metrics.inc m_served served;
  Metrics.inc m_aborted aborted;
  List.iter (Metrics.observe m_service) service_list;
  List.iter
    (fun (_, o) ->
      match o with
      | Served s -> Metrics.observe m_pred_sojourn s.o_pred_sojourn
      | _ -> ())
    outcomes;
  let det, sil, ret =
    List.fold_left
      (fun (d, s, t) (_, e) ->
        match e with
        | Done e -> (d + e.e_detected, s + e.e_silent, t + e.e_retries)
        | Abort a -> (d + a.a_detected, s + a.a_silent, t + max 0 (a.a_attempts - 1)))
      (0, 0, 0) kept_work
  in
  Metrics.inc m_faults_detected det;
  Metrics.inc m_faults_silent sil;
  Metrics.inc m_retries ret;
  Metrics.inc m_memo_hits !memo_hits;
  Metrics.inc m_memo_misses !memo_misses;
  let sim_totals = Sim.Counters.create () in
  Array.iter (fun i -> Sim.Counters.add sim_totals i.totals) instances;
  List.iter2
    (fun (_, c) (_, v) -> Metrics.inc c v)
    m_sim
    (Sim.Counters.fields sim_totals);
  (* Per-window admission + predicted-SLO series. Built from outcomes
     alone, so sampling after scheduling changes nothing: timestamps are
     explicit and the data never saw the fleet. *)
  let win_of r =
    match cfg.arrival with Closed -> 0 | Poisson _ -> r.r_arrival / window
  in
  let win_ids = ref [] in
  let win_tbl = Hashtbl.create 16 in
  List.iter
    (fun (r, o) ->
      let w = win_of r in
      let cell =
        match Hashtbl.find_opt win_tbl w with
        | Some c -> c
        | None ->
            let c = ref (0, 0, 0, 0, 0) in
            Hashtbl.add win_tbl w c;
            win_ids := w :: !win_ids;
            c
      in
      let arr, adm, shed, srv, viol = !cell in
      let adm, shed = match o with Rejected _ -> (adm, shed + 1) | _ -> (adm + 1, shed) in
      let srv, viol =
        match o with
        | Served s -> (srv + 1, if violates s.o_pred_sojourn then viol + 1 else viol)
        | _ -> (srv, viol)
      in
      cell := (arr + 1, adm, shed, srv, viol))
    outcomes;
  let cum_srv = ref 0 and cum_viol = ref 0 in
  List.iter
    (fun w ->
      let arr, adm, shed, srv, viol = !(Hashtbl.find win_tbl w) in
      cum_srv := !cum_srv + srv;
      cum_viol := !cum_viol + viol;
      let rate =
        if !cum_srv = 0 then 0.0
        else float_of_int !cum_viol /. float_of_int !cum_srv
      in
      let ts = match cfg.arrival with Closed -> 0 | Poisson _ -> (w + 1) * window in
      Metrics.sample m_window ~ts
        [ float_of_int arr; float_of_int adm; float_of_int shed;
          float_of_int viol; rate ])
    (List.rev !win_ids);
  let pred_violations = !cum_viol in
  let observed_violations =
    match cfg.slo_sojourn with
    | None -> 0
    | Some t ->
        List.length
          (List.filter
             (function
               | r, Served { o_finish; _ } -> o_finish - r.r_arrival > t
               | _ -> false)
             outcomes)
  in
  Metrics.inc m_slo_pred pred_violations;
  Metrics.inc m_fail_open_pred !pred_fail_open;
  Metrics.inc m_health_shed !health_shed;
  (match pred_health with
  | None -> ()
  | Some pm ->
      List.iter2
        (fun (_, c) (_, n) -> Metrics.inc c n)
        m_health_pred_transitions
        (Health.transition_counts pm);
      let inc_opt m v = Option.iter (fun c -> Metrics.inc c v) m in
      inc_opt m_health_pred_readmissions (Health.readmissions pm);
      inc_opt m_health_pred_relapses (Health.relapses pm);
      inc_opt m_health_pred_probe_cycles (Health.probe_cycles pm));
  Metrics.inc m_slo_observed observed_violations;
  Metrics.inc m_fail_open_observed !observed_fail_open;
  List.iter
    (fun (pair, c) ->
      let n =
        Array.fold_left
          (fun acc i ->
            match i.hm with
            | None -> acc
            | Some m -> acc + List.assoc pair (Health.transition_counts m))
          0 instances
      in
      Metrics.inc c n)
    m_health_observed_transitions;
  let slo =
    match cfg.slo_sojourn with
    | None -> None
    | Some target ->
        Some
          {
            s_target = target;
            s_pred_violations = pred_violations;
            s_observed_violations = observed_violations;
            s_pred_violation_rate =
              (if served = 0 then 0.0
               else float_of_int pred_violations /. float_of_int served);
          }
  in
  Array.iter
    (fun i ->
      let labels = [ ("instance", string_of_int i.id) ] in
      let g name help = Metrics.gauge reg ~track:Metrics.Sched ~labels ~help name in
      Metrics.set_int
        (g "htvm_sched_instance_busy_cycles" "Busy cycles per instance.")
        i.busy;
      Metrics.set_int
        (g "htvm_sched_instance_served" "Requests served per instance.")
        i.served;
      Metrics.set_int
        (g "htvm_sched_instance_batches" "Batches dispatched per instance.")
        i.batches;
      Metrics.set_int
        (g "htvm_sched_instance_degraded"
           "1 when the instance left the healthy rotation.")
        (match i.degraded_at with Some _ -> 1 | None -> 0);
      match i.hm with
      | None -> ()
      | Some m ->
          Metrics.set_int
            (g "htvm_sched_instance_probe_cycles"
               "Cycles the instance spent on health probes.")
            i.probe_cyc;
          Metrics.set_int
            (g "htvm_sched_instance_readmissions"
               "Times the instance rejoined the healthy rotation.")
            (Health.readmissions m))
    instances;
  Metrics.set_int
    (Metrics.gauge reg ~track:Metrics.Sched ~help:"End-to-end makespan cycles."
       "htvm_sched_makespan_cycles")
    makespan;
  Metrics.set
    (Metrics.gauge reg ~track:Metrics.Sched
       ~help:"Served requests per second of simulated time."
       "htvm_sched_throughput_rps")
    throughput;
  let health_sum =
    match (pred_health, health_cfg) with
    | Some pm, Some hc ->
        Some
          {
            h_config = hc;
            h_pred_state = Health.state pm;
            h_pred_transitions = List.length (Health.transitions pm);
            h_pred_readmissions = Health.readmissions pm;
            h_pred_relapses = Health.relapses pm;
            h_pred_probe_cycles = Health.probe_cycles pm;
            h_pred_fail_open = !pred_fail_open;
            h_shed = !health_shed;
          }
    | _ -> None
  in
  {
    r_config = cfg;
    r_window = window;
    r_mean_gap = mean_gap;
    r_outcomes = outcomes;
    r_served = served;
    r_rejected = rejected;
    r_aborted = aborted;
    r_shed_rate =
      (if cfg.requests = 0 then 0.0
       else float_of_int rejected /. float_of_int cfg.requests);
    r_service = percentiles_of service_list;
    r_sojourn = percentiles_of sojourn_list;
    r_makespan = makespan;
    r_throughput_rps = throughput;
    r_instances =
      Array.to_list
        (Array.map
           (fun i ->
             {
               i_id = i.id;
               i_batches = i.batches;
               i_served = i.served;
               i_aborted = i.aborted;
               i_busy = i.busy;
               i_utilization =
                 (if makespan = 0 then 0.0
                  else float_of_int i.busy /. float_of_int makespan);
               i_faults = i.faults;
               i_degraded_at = i.degraded_at;
               i_health = Option.map health_stat_of i.hm;
               i_totals = i.totals;
             })
           instances);
    r_slo = slo;
    r_health = health_sum;
    r_fail_open = !observed_fail_open;
    r_memo_hits = !memo_hits;
    r_memo_misses = !memo_misses;
    r_metrics = Metrics.snapshot reg;
  }

let pp_percentiles buf label p =
  Buffer.add_string buf
    (Printf.sprintf "%s count=%d min=%d mean=%.3f p50=%d p95=%d p99=%d max=%d\n"
       label p.p_count p.p_min p.p_mean p.p50 p.p95 p.p99 p.p_max)

let percentiles_json p =
  J.Obj
    [
      ("count", J.Int p.p_count);
      ("min", J.Int p.p_min);
      ("mean", J.Float p.p_mean);
      ("p50", J.Int p.p50);
      ("p95", J.Int p.p95);
      ("p99", J.Int p.p99);
      ("max", J.Int p.p_max);
    ]

let health_stat_json hs =
  J.Obj
    [
      ("state", J.Str (Health.state_label hs.hs_state));
      ("transitions", J.Int hs.hs_transitions);
      ("readmissions", J.Int hs.hs_readmissions);
      ("relapses", J.Int hs.hs_relapses);
      ("probes_passed", J.Int hs.hs_probes_passed);
      ("probes_failed", J.Int hs.hs_probes_failed);
      ("probe_cycles", J.Int hs.hs_probe_cycles);
    ]

(* --- multi-tenant serving --------------------------------------------- *)

(* The tenancy layer hosts several compiled artifacts behind one fleet.
   It keeps the single-model determinism architecture intact:

   1. Generation + admission are pure functions of the seed (or of the
      replayed trace file): the class mix, payload seeds and arrival
      cycles come from one Rng stream, the per-window ingress cap sheds
      from arrivals alone, and the SLO shed pass compares *predicted*
      queueing-free sojourns — computed from exact per-request service
      cycles, which are themselves pure functions of the request —
      against per-class targets. The shed set never sees the fleet.
   2. Execution is per-request on a fresh machine (no faults in the
      multi-tenant path: tenancy composes with the single-model fault
      machinery, it does not duplicate it).
   3. Scheduling (pinning, hot swaps, per-instance clocks) happens on
      the submitting domain and only feeds sched-track metrics. *)

type model = {
  m_name : string;
  m_artifact : C.artifact;
  m_graph : Ir.Graph.t;
}

type model_class = {
  k_name : string;
  k_model : string;
  k_slo : int option;
  k_weight : int;
}

type trace_entry = {
  t_cycle : int;
  t_class : string;
  t_seed : int;
  t_line : int;
}

type mt_arrival =
  | Mt_closed
  | Mt_poisson of { mean_gap : int }
  | Mt_diurnal of { mean_gap : int; period : int }
  | Mt_bursty of { mean_gap : int; burst : int }
  | Mt_replay of trace_entry list

type placement = Pinned | Swap

type mt_config = {
  mt_workers : int;
  mt_max_batch : int;
  mt_queue_depth : int;
  mt_requests : int;
  mt_seed : int;
  mt_arrival : mt_arrival;
  mt_window : int;
  mt_dispatch_overhead : int;
  mt_swap_overhead : int;
  mt_placement : placement;
  mt_jobs : int;
  mt_use_plan : bool;
  mt_degraded_instances : int list;
  mt_health : Health.config option;
}

let mt_default =
  {
    mt_workers = 4;
    mt_max_batch = 8;
    mt_queue_depth = 32;
    mt_requests = 64;
    mt_seed = 42;
    mt_arrival = Mt_closed;
    mt_window = 0;
    mt_dispatch_overhead = 1_000;
    mt_swap_overhead = 5_000;
    mt_placement = Swap;
    mt_jobs = 1;
    mt_use_plan = true;
    mt_degraded_instances = [];
    mt_health = None;
  }

type mt_request = {
  q_id : int;
  q_class : int;  (* index into the class list *)
  q_input_seed : int;
  q_arrival : int;
}

type mt_outcome =
  | Mt_served of {
      mo_instance : int;
      mo_batch : int;
      mo_start : int;
      mo_finish : int;
      mo_service : int;
      mo_digest : string;
      mo_pred_sojourn : int;
    }
  | Mt_shed_queue of { mo_window : int }
  | Mt_shed_slo of { mo_pred_sojourn : int }

type class_stat = {
  cs_name : string;
  cs_model : string;
  cs_slo : int option;
  cs_weight : int;
  cs_requests : int;
  cs_served : int;
  cs_shed_queue : int;
  cs_shed_slo : int;
  cs_observed_violations : int;
  cs_service : percentiles;
}

type mt_instance_stat = {
  mi_id : int;
  mi_batches : int;
  mi_served : int;
  mi_busy : int;
  mi_swaps : int;
  mi_utilization : float;
  mi_model : string option;
  mi_health : health_stat option;
}

type mt_report = {
  mt_cfg : mt_config;
  mt_class_list : model_class list;
  mt_resolved_window : int;
  mt_resolved_gap : int;
  mt_batch : int;  (** resolved batch size (autotuned when [mt_max_batch = 0]) *)
  mt_outcomes : (mt_request * mt_outcome) list;
  mt_served : int;
  mt_shed_queue : int;
  mt_shed_slo : int;
  mt_swaps : int;
  mt_class_stats : class_stat list;
  mt_service : percentiles;
  mt_sojourn : percentiles;
  mt_makespan : int;
  mt_throughput_rps : float;
  mt_fail_open : int;
  mt_instances : mt_instance_stat list;
  mt_metrics : Metrics.snapshot;
}

(* --- arrival trace format ---------------------------------------------

   Line-oriented, replayable with `htvmc serve --replay`:

     htvm-serve-trace v1
     # comment
     <cycle> <class-name> <seed>

   Cycles must be non-negative and non-decreasing (requests are in
   arrival order, line order breaks ties). *)

let trace_header = "htvm-serve-trace v1"

let render_arrival_trace r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (trace_header ^ "\n");
  Buffer.add_string buf "# cycle class seed\n";
  List.iter
    (fun (q, _) ->
      let cls = List.nth r.mt_class_list q.q_class in
      Buffer.add_string buf
        (Printf.sprintf "%d %s %d\n" q.q_arrival cls.k_name q.q_input_seed))
    r.mt_outcomes;
  Buffer.contents buf

let parse_arrival_trace text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> Error (Bad_trace { line = 1; reason = "empty trace" })
  | header :: rest ->
      if String.trim header <> trace_header then
        Error
          (Bad_trace
             { line = 1; reason = Printf.sprintf "expected header %S" trace_header })
      else
        let rec go line_no acc prev_cycle = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              let trimmed = String.trim line in
              if trimmed = "" || trimmed.[0] = '#' then
                go (line_no + 1) acc prev_cycle rest
              else
                let tokens =
                  List.filter (( <> ) "") (String.split_on_char ' ' trimmed)
                in
                match tokens with
                | [ cycle; cls; seed ] -> (
                    match (int_of_string_opt cycle, int_of_string_opt seed) with
                    | None, _ ->
                        Error
                          (Bad_trace
                             {
                               line = line_no;
                               reason = Printf.sprintf "bad cycle %S" cycle;
                             })
                    | _, None ->
                        Error
                          (Bad_trace
                             {
                               line = line_no;
                               reason = Printf.sprintf "bad seed %S" seed;
                             })
                    | Some c, Some _ when c < 0 ->
                        Error
                          (Bad_trace
                             {
                               line = line_no;
                               reason = "arrival cycle must be >= 0";
                             })
                    | Some c, Some _ when c < prev_cycle ->
                        Error
                          (Bad_trace
                             {
                               line = line_no;
                               reason = "arrival cycles must be non-decreasing";
                             })
                    | Some c, Some s ->
                        go (line_no + 1)
                          ({ t_cycle = c; t_class = cls; t_seed = s; t_line = line_no }
                          :: acc)
                          c rest)
                | _ ->
                    Error
                      (Bad_trace
                         {
                           line = line_no;
                           reason =
                             Printf.sprintf
                               "expected `cycle class seed`, got %d token(s)"
                               (List.length tokens);
                         }))
        in
        go 2 [] 0 rest

let load_arrival_trace path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_arrival_trace text
  | exception Sys_error e -> Error (Bad_trace { line = 0; reason = e })

(* --- multi-tenant run -------------------------------------------------- *)

let mt_arrival_to_string r =
  match r.mt_cfg.mt_arrival with
  | Mt_closed -> "closed"
  | Mt_poisson _ -> Printf.sprintf "poisson gap %d" r.mt_resolved_gap
  | Mt_diurnal { period; _ } ->
      Printf.sprintf "diurnal gap %d period %d" r.mt_resolved_gap period
  | Mt_bursty { burst; _ } ->
      Printf.sprintf "bursty burst %d gap %d" burst r.mt_resolved_gap
  | Mt_replay entries -> Printf.sprintf "replay n=%d" (List.length entries)

let placement_to_string = function Pinned -> "pinned" | Swap -> "swap"

(* Validate the static configuration; every violation is a typed
   [Bad_config] rather than an exception, so `htvmc serve` can print it
   and exit cleanly. *)
let mt_validate cfg ~models ~classes =
  let err msg = Error (Bad_config msg) in
  if cfg.mt_workers < 1 then err "workers must be >= 1"
  else if cfg.mt_max_batch < 0 then err "max_batch must be >= 1 (or 0 = autotune)"
  else if cfg.mt_queue_depth < 1 then err "queue_depth must be >= 1"
  else if cfg.mt_requests < 0 then err "requests must be >= 0"
  else if cfg.mt_dispatch_overhead < 0 then err "dispatch_overhead must be >= 0"
  else if cfg.mt_swap_overhead < 0 then err "swap_overhead must be >= 0"
  else if models = [] then err "the model registry is empty"
  else if classes = [] then err "at least one model class is required"
  else if
    List.length (List.sort_uniq compare (List.map (fun m -> m.m_name) models))
    <> List.length models
  then err "model registry names must be unique"
  else if
    List.length (List.sort_uniq compare (List.map (fun k -> k.k_name) classes))
    <> List.length classes
  then err "class names must be unique"
  else if List.exists (fun k -> k.k_name = "" || String.contains k.k_name ' ') classes
  then err "class names must be non-empty and contain no spaces"
  else if List.exists (fun k -> k.k_weight < 1) classes then
    err "class weights must be >= 1"
  else if
    List.exists (fun k -> match k.k_slo with Some t -> t < 1 | None -> false) classes
  then err "class SLO targets must be >= 1"
  else if
    List.exists
      (fun id -> id < 0 || id >= cfg.mt_workers)
      cfg.mt_degraded_instances
  then
    err
      (Printf.sprintf "degraded instance ids must be in [0, %d)" cfg.mt_workers)
  else if
    List.length (List.sort_uniq compare cfg.mt_degraded_instances)
    <> List.length cfg.mt_degraded_instances
  then err "degraded instance ids must be distinct"
  else
    match cfg.mt_arrival with
    | Mt_diurnal { period; _ } when period < 0 ->
        err "diurnal period must be >= 0 (0 = auto)"
    | Mt_bursty { burst; _ } when burst < 1 -> err "burst must be >= 1"
    | _ -> Ok ()

(* Resolve each class's model name against the registry; the distinct
   models actually referenced get dense indices in first-reference
   order (the pinning map runs over those). *)
let mt_resolve ~models ~classes =
  let rec resolve acc used = function
    | [] -> Ok (List.rev acc, List.rev used)
    | k :: rest -> (
        match List.find_opt (fun m -> m.m_name = k.k_model) models with
        | None -> Error (Unknown_model { class_name = k.k_name; model = k.k_model })
        | Some m ->
            let used, idx =
              match
                List.mapi (fun i u -> (i, u)) (List.rev used)
                |> List.find_opt (fun (_, u) -> u.m_name = m.m_name)
              with
              | Some (i, _) -> (used, i)
              | None -> (m :: used, List.length used)
            in
            resolve ((k, idx) :: acc) used rest)
  in
  resolve [] [] classes

let mt_run ?trace ?metrics cfg ~models ~classes =
  match mt_validate cfg ~models ~classes with
  | Error _ as e -> e
  | Ok () ->
  match mt_resolve ~models ~classes with
  | Error _ as e -> e
  | Ok (class_models, used_models) ->
  let n_classes = List.length classes in
  let class_arr = Array.of_list classes in
  let model_of_class = Array.of_list (List.map snd class_models) in
  let used = Array.of_list used_models in
  let n_models = Array.length used in
  (match cfg.mt_placement with
  | Pinned when cfg.mt_workers < n_models ->
      Error
        (Bad_config
           (Printf.sprintf
              "pinned placement needs workers >= distinct models (%d < %d)"
              cfg.mt_workers n_models))
  | _ -> Ok ())
  |> function
  | Error _ as e -> e
  | Ok () ->
  (* Replayed traces must only reference configured classes. *)
  let class_index name =
    let rec go i = if i >= n_classes then None
      else if class_arr.(i).k_name = name then Some i else go (i + 1)
    in
    go 0
  in
  let replay_resolved =
    match cfg.mt_arrival with
    | Mt_replay entries ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | e :: rest -> (
              match class_index e.t_class with
              | None ->
                  Error
                    (Unknown_class
                       {
                         class_name = e.t_class;
                         context = Printf.sprintf "trace line %d" e.t_line;
                       })
              | Some i -> go ((e, i) :: acc) rest)
        in
        go [] entries
    | _ -> Ok []
  in
  match replay_resolved with
  | Error _ as e -> e
  | Ok replay ->
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  (* --- probes: one fault-free execution per referenced model, pure
     functions of (artifact, seed) — forced only when window or gap
     auto-resolution needs them. *)
  let probe =
    lazy
      (Array.fold_left
         (fun acc m ->
           let inputs = Models.Zoo.random_input ~seed:cfg.mt_seed m.m_graph in
           let _, rep = C.run m.m_artifact ~inputs in
           max acc (max 1 (C.full_cycles rep)))
         1 used)
  in
  let open_mode =
    match cfg.mt_arrival with Mt_closed -> false | _ -> true
  in
  let resolved_gap =
    match cfg.mt_arrival with
    | Mt_closed | Mt_replay _ -> 0
    | Mt_poisson { mean_gap } | Mt_diurnal { mean_gap; _ }
    | Mt_bursty { mean_gap; _ } ->
        if mean_gap > 0 then mean_gap else max 1 (Lazy.force probe / 2)
  in
  let window =
    if not open_mode then 0
    else if cfg.mt_window > 0 then cfg.mt_window
    else Lazy.force probe
  in
  let resolved_period =
    match cfg.mt_arrival with
    | Mt_diurnal { period; _ } -> if period > 0 then period else 8 * window
    | _ -> 0
  in
  (* Health lifecycle (observed plane only — the multi-tenant path is
     fault-free): auto fields resolve against the largest model's probe
     time, violations surface as typed [Bad_config] errors. *)
  let health_res =
    match cfg.mt_health with
    | None -> Ok None
    | Some hc -> (
        match resolve_health hc ~probe_cycles:(Lazy.force probe) with
        | Ok hc -> Ok (Some hc)
        | Error msg -> Error (Bad_config msg))
  in
  match health_res with
  | Error _ as e -> e
  | Ok mt_health_cfg ->
  (* --- generation: class mix, payload seeds and arrivals from one Rng
     stream (or verbatim from the replayed trace). *)
  let total_weight =
    Array.fold_left (fun acc k -> acc + k.k_weight) 0 class_arr
  in
  let pick_class rng =
    let d = Util.Rng.int rng total_weight in
    let rec go i acc =
      let acc = acc + class_arr.(i).k_weight in
      if d < acc then i else go (i + 1) acc
    in
    go 0 0
  in
  let requests =
    match replay with
    | _ :: _ | [] when (match cfg.mt_arrival with Mt_replay _ -> true | _ -> false)
      ->
        List.mapi
          (fun i (e, cls) ->
            { q_id = i; q_class = cls; q_input_seed = e.t_seed; q_arrival = e.t_cycle })
          replay
    | _ ->
        let rng = Util.Rng.create cfg.mt_seed in
        let clock = ref 0 in
        List.init cfg.mt_requests (fun k ->
            let cls = pick_class rng in
            let seed = Util.Rng.int_in rng 1 1_000_000 in
            (match cfg.mt_arrival with
            | Mt_closed | Mt_replay _ -> ()
            | Mt_poisson _ -> clock := !clock + exp_gap rng ~mean:resolved_gap
            | Mt_diurnal _ ->
                let pos = !clock mod resolved_period in
                let half = max 1 (resolved_period / 2) in
                let peak = max 1 (resolved_gap / 2) in
                let trough = 2 * resolved_gap in
                let d = abs (pos - half) in
                let mean = peak + ((trough - peak) * d / half) in
                clock := !clock + exp_gap rng ~mean
            | Mt_bursty { burst; _ } ->
                if k mod burst = 0 then
                  clock := !clock + exp_gap rng ~mean:(burst * resolved_gap));
            { q_id = k; q_class = cls; q_input_seed = seed; q_arrival = !clock })
  in
  let n_requests = List.length requests in
  let outcomes = Array.make n_requests None in
  (* --- ingress-cap admission: a pure function of the arrival stream. *)
  let admitted =
    if not open_mode then List.map (fun q -> (0, q)) requests
    else begin
      let in_window = Hashtbl.create 16 in
      List.filter_map
        (fun q ->
          let w = q.q_arrival / window in
          let n = Option.value ~default:0 (Hashtbl.find_opt in_window w) in
          if n >= cfg.mt_queue_depth then begin
            outcomes.(q.q_id) <- Some (Mt_shed_queue { mo_window = w });
            Trace.interval trace ~track:"serve" ~cat:"serve" ~ts:q.q_arrival
              ~dur:0
              ~args:[ ("request", J.Int q.q_id); ("window", J.Int w) ]
              "shed-queue";
            None
          end
          else begin
            Hashtbl.replace in_window w (n + 1);
            Some (w, q)
          end)
        requests
    end
  in
  (* --- execution: every ingress-admitted request on the pool. SLO
     shedding needs exact service cycles, so candidates execute before
     the shed pass decides — the simulator is cheap and the shed set
     stays a pure function of the arrival stream. *)
  let execs =
    Util.Pool.with_pool ~jobs:cfg.mt_jobs (fun pool ->
        Util.Pool.map pool
          (fun (_, q) ->
            let m = used.(model_of_class.(q.q_class)) in
            let inputs = Models.Zoo.random_input ~seed:q.q_input_seed m.m_graph in
            let out, rep = C.run ~use_plan:cfg.mt_use_plan m.m_artifact ~inputs in
            (digest_tensor out, C.full_cycles rep, rep.Sim.Machine.totals))
          admitted)
  in
  let work = List.combine admitted execs in
  (* --- SLO shed + batch assembly, in arrival order. Batches group one
     window's admitted requests per model (a batch executes on one
     artifact); each batch is predicted to dispatch the moment its
     window closes onto an idle machine, paying the dispatch overhead
     plus — under [Swap] placement — one cold model load. A request
     whose predicted sojourn exceeds its class SLO is shed and frees
     its batch slot for the next arrival. *)
  let swap_pred =
    match cfg.mt_placement with Swap -> cfg.mt_swap_overhead | Pinned -> 0
  in
  let windows =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (((w, _), _) as item) ->
        (match Hashtbl.find_opt tbl w with
        | None ->
            Hashtbl.add tbl w (ref [ item ]);
            order := w :: !order
        | Some cell -> cell := item :: !cell))
      work;
    List.rev_map (fun w -> (w, List.rev !(Hashtbl.find tbl w))) !order
    |> List.rev
  in
  (* One assembly pass at a given batch size; returns the batch list (in
     dispatch order) plus the shed-SLO set, without mutating anything —
     the autotuner evaluates several sizes before one is committed. *)
  let assemble max_batch =
    let batches = ref [] in
    let shed = ref [] in
    List.iter
      (fun (w, items) ->
        let dispatch_t = if open_mode then (w + 1) * window else 0 in
        let base = dispatch_t + cfg.mt_dispatch_overhead + swap_pred in
        (* per-model fill count and predicted cursor of the open batch *)
        let fill = Array.make n_models 0 in
        let cursor = Array.make n_models 0 in
        let current = Array.make n_models [] in
        let flush m =
          if current.(m) <> [] then
            batches := (w, m, List.rev current.(m)) :: !batches;
          current.(m) <- [];
          fill.(m) <- 0
        in
        List.iter
          (fun (((_, q), (digest, service, totals)) : (int * mt_request) * _) ->
            let m = model_of_class.(q.q_class) in
            let start = if fill.(m) = 0 then base else cursor.(m) in
            let pred_finish = start + service in
            let pred_sojourn = pred_finish - q.q_arrival in
            let violates =
              match class_arr.(q.q_class).k_slo with
              | Some t -> pred_sojourn > t
              | None -> false
            in
            if violates then shed := (q, pred_sojourn) :: !shed
            else begin
              current.(m) <- (q, digest, service, totals, pred_sojourn) :: current.(m);
              cursor.(m) <- pred_finish;
              fill.(m) <- fill.(m) + 1;
              if fill.(m) >= max_batch then flush m
            end)
          items;
        for m = 0 to n_models - 1 do
          flush m
        done)
      windows;
    (List.rev !batches, List.rev !shed)
  in
  (* Batch autotune: with [mt_max_batch = 0], score candidate sizes on
     the predicted (fleet-free) schedule — fewest SLO sheds first, then
     lowest predicted total cost, then the smaller size. The cost is
     total work (each batch pays the dispatch overhead and, under Swap,
     one cold load — fewer batches amortize it) plus the summed
     predicted sojourns (bigger batches queue requests behind each
     other), so a dispatch overhead dwarfing per-request service pushes
     the tuner toward wide batches and a cheap dispatch toward narrow
     ones. A pure function of the arrival stream, so the choice is
     workers/jobs-invariant like everything else in the tally. *)
  let batch_size, batches, shed_slo_list =
    if cfg.mt_max_batch > 0 then
      let b, s = assemble cfg.mt_max_batch in
      (cfg.mt_max_batch, b, s)
    else
      let candidates = [ 1; 2; 4; 8; 16; 32 ] in
      let best =
        List.fold_left
          (fun best b ->
            let batches, shed = assemble b in
            let work =
              List.fold_left
                (fun acc (_, _, items) ->
                  List.fold_left
                    (fun acc (_, _, service, _, _) -> acc + service)
                    (acc + cfg.mt_dispatch_overhead + swap_pred)
                    items)
                0 batches
            in
            let sojourns =
              List.fold_left
                (fun acc (_, _, items) ->
                  List.fold_left
                    (fun acc (_, _, _, _, pred) -> acc + pred)
                    acc items)
                0 batches
            in
            let cost = (List.length shed, work + sojourns, b) in
            match best with
            | Some (best_cost, _) when compare cost best_cost >= 0 -> best
            | _ -> Some (cost, (b, batches, shed)))
          None candidates
      in
      match best with
      | Some (_, (b, batches, shed)) -> (b, batches, shed)
      | None -> assert false
  in
  List.iter
    (fun (q, pred) -> outcomes.(q.q_id) <- Some (Mt_shed_slo { mo_pred_sojourn = pred }))
    shed_slo_list;
  (* --- scheduling: the only fleet-shaped pass. Pinned placement maps
     instance i to referenced model (i mod n_models); Swap placement
     routes anywhere and charges [mt_swap_overhead] whenever the
     instance's resident model changes. *)
  let instances =
    Array.init cfg.mt_workers (fun id ->
        let boot_degraded = List.mem id cfg.mt_degraded_instances in
        object
          val mutable free_at = 0
          val mutable busy = 0
          val mutable served = 0
          val mutable batches = 0
          val mutable swaps = 0
          val mutable probe_cyc = 0
          val hm =
            Option.map
              (fun hc ->
                Health.create ~degraded_at_start:boot_degraded hc ~instance:id)
              mt_health_cfg
          val mutable loaded =
            (match cfg.mt_placement with
            | Pinned -> Some (id mod n_models)
            | Swap -> None)
          method id = id
          method free_at = free_at
          method busy = busy
          method served = served
          method batches = batches
          method swaps = swaps
          method probe_cyc = probe_cyc
          method hm = hm
          method loaded = loaded

          (* Without a lifecycle a boot-degraded instance stays out of
             rotation for the whole run. *)
          method eligible =
            match hm with
            | Some m -> Health.eligible m
            | None -> not boot_degraded

          method advance now =
            match hm with
            | None -> ()
            | Some m ->
                let pc = Health.advance m ~now in
                busy <- busy + pc;
                probe_cyc <- probe_cyc + pc

          method set_free_at t = free_at <- t
          method add_busy d = busy <- busy + d
          method add_served n = served <- served + n
          method incr_batches = batches <- batches + 1
          method incr_swaps = swaps <- swaps + 1
          method set_loaded m = loaded <- Some m
        end)
  in
  let mt_fail_open = ref 0 in
  let eligible m =
    match cfg.mt_placement with
    | Swap -> Array.to_list instances
    | Pinned ->
        List.filter
          (fun i -> i#id mod n_models = m)
          (Array.to_list instances)
  in
  List.iteri
    (fun batch_idx (w, m, items) ->
      let pool = eligible m in
      let dispatch_t =
        if open_mode then (w + 1) * window
        else List.fold_left (fun acc i -> min acc i#free_at) max_int pool
      in
      (* Let lifecycles catch up to the dispatch instant (cooldowns
         expire, probes run and charge their cycles), then route within
         the in-rotation subset; an empty subset fails open to the full
         placement pool. *)
      List.iter (fun i -> i#advance dispatch_t) pool;
      let pool =
        match List.filter (fun i -> i#eligible) pool with
        | [] ->
            incr mt_fail_open;
            pool
        | live -> live
      in
      let inst =
        List.fold_left
          (fun best i -> if i#free_at < best#free_at then i else best)
          (List.hd pool) (List.tl pool)
      in
      let start = max dispatch_t inst#free_at in
      (* Resident model differs (or nothing is loaded yet): pay one
         reload. Unreachable under Pinned — the eligible pool always
         matches the batch's model. *)
      let swap_cost =
        if inst#loaded = Some m then 0
        else begin
          inst#incr_swaps;
          inst#set_loaded m;
          cfg.mt_swap_overhead
        end
      in
      let cursor = ref (start + cfg.mt_dispatch_overhead + swap_cost) in
      List.iter
        (fun (q, digest, service, _totals, pred) ->
          outcomes.(q.q_id) <-
            Some
              (Mt_served
                 {
                   mo_instance = inst#id;
                   mo_batch = batch_idx;
                   mo_start = !cursor;
                   mo_finish = !cursor + service;
                   mo_service = service;
                   mo_digest = digest;
                   mo_pred_sojourn = pred;
                 });
          cursor := !cursor + service;
          inst#add_served 1)
        items;
      let finish = !cursor in
      Trace.interval trace
        ~track:(Printf.sprintf "instance %d" inst#id)
        ~cat:"mtserve" ~ts:start ~dur:(finish - start)
        ~args:
          [
            ("batch", J.Int batch_idx);
            ("model", J.Str used.(m).m_name);
            ("requests", J.Int (List.length items));
          ]
        (Printf.sprintf "batch %d [%s] (%d req)" batch_idx used.(m).m_name
           (List.length items));
      inst#set_free_at finish;
      inst#add_busy (finish - start);
      inst#incr_batches)
    batches;
  (* Drain the lifecycles to the fleet's last completion so in-flight
     cooldowns and probes settle before stats are snapshotted. *)
  (match mt_health_cfg with
  | None -> ()
  | Some _ ->
      let fleet_end =
        Array.fold_left (fun acc i -> max acc i#free_at) 0 instances
      in
      Array.iter (fun i -> i#advance fleet_end) instances);
  (* --- aggregation ----------------------------------------------- *)
  let outcomes =
    List.map
      (fun q ->
        match outcomes.(q.q_id) with
        | Some o -> (q, o)
        | None -> assert false)
      requests
  in
  let served_list =
    List.filter_map
      (function _, Mt_served s -> Some s.mo_service | _ -> None)
      outcomes
  in
  let sojourn_list =
    List.filter_map
      (function
        | q, Mt_served s -> Some (s.mo_finish - q.q_arrival) | _ -> None)
      outcomes
  in
  let served = List.length served_list in
  let shed_queue =
    List.length
      (List.filter (function _, Mt_shed_queue _ -> true | _ -> false) outcomes)
  in
  let shed_slo =
    List.length
      (List.filter (function _, Mt_shed_slo _ -> true | _ -> false) outcomes)
  in
  let makespan =
    Array.fold_left (fun acc i -> max acc i#free_at) 0 instances
  in
  let freq_hz =
    float_of_int used.(0).m_artifact.C.cfg.C.platform.Arch.Platform.freq_mhz
    *. 1.0e6
  in
  let throughput =
    if makespan = 0 then 0.0
    else float_of_int served /. (float_of_int makespan /. freq_hz)
  in
  let swaps = Array.fold_left (fun acc i -> acc + i#swaps) 0 instances in
  (* per-class stats *)
  let class_stats =
    List.mapi
      (fun ci k ->
        let mine = List.filter (fun (q, _) -> q.q_class = ci) outcomes in
        let count p = List.length (List.filter p mine) in
        let observed =
          match k.k_slo with
          | None -> 0
          | Some t ->
              count (function
                | q, Mt_served s -> s.mo_finish - q.q_arrival > t
                | _ -> false)
        in
        {
          cs_name = k.k_name;
          cs_model = k.k_model;
          cs_slo = k.k_slo;
          cs_weight = k.k_weight;
          cs_requests = List.length mine;
          cs_served = count (function _, Mt_served _ -> true | _ -> false);
          cs_shed_queue =
            count (function _, Mt_shed_queue _ -> true | _ -> false);
          cs_shed_slo = count (function _, Mt_shed_slo _ -> true | _ -> false);
          cs_observed_violations = observed;
          cs_service =
            percentiles_of
              (List.filter_map
                 (function _, Mt_served s -> Some s.mo_service | _ -> None)
                 mine);
        })
      classes
  in
  (* --- metrics: per-class admission/outcome counters and service
     histograms on the cycles track (workers/jobs-invariant); swaps,
     per-instance stats, makespan/throughput and observed SLO
     violations on the sched track. *)
  let cycle_buckets =
    [ 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000; 3_000_000;
      10_000_000 ]
  in
  Metrics.inc
    (Metrics.counter reg ~help:"Requests generated or replayed."
       "htvm_mtserve_requests_total")
    n_requests;
  Metrics.inc
    (Metrics.counter reg ~help:"Requests served to completion."
       "htvm_mtserve_served_total")
    served;
  Metrics.inc
    (Metrics.counter reg ~help:"Requests shed at the per-window ingress cap."
       "htvm_mtserve_shed_queue_total")
    shed_queue;
  Metrics.inc
    (Metrics.counter reg
       ~help:"Requests shed because the predicted sojourn broke the class SLO."
       "htvm_mtserve_shed_slo_total")
    shed_slo;
  Metrics.inc
    (Metrics.counter reg ~help:"Batches assembled (predicted schedule)."
       "htvm_mtserve_batches_total")
    (List.length batches);
  Metrics.set_int
    (Metrics.gauge reg
       ~help:"Resolved batch size (autotuned when max_batch = 0)."
       "htvm_mtserve_batch_size")
    batch_size;
  List.iter
    (fun cs ->
      let labels = [ ("class", cs.cs_name) ] in
      let c name help = Metrics.counter reg ~labels ~help name in
      Metrics.inc
        (c "htvm_mtserve_class_requests_total" "Per-class requests.")
        cs.cs_requests;
      Metrics.inc
        (c "htvm_mtserve_class_served_total" "Per-class served requests.")
        cs.cs_served;
      Metrics.inc
        (c "htvm_mtserve_class_shed_queue_total"
           "Per-class ingress-cap sheds.")
        cs.cs_shed_queue;
      Metrics.inc
        (c "htvm_mtserve_class_slo_pred_violations_total"
           "Per-class predicted-SLO violations (shed before dispatch).")
        cs.cs_shed_slo;
      let h =
        Metrics.histogram reg ~labels ~buckets:cycle_buckets
          ~help:"Per-class service cycles." "htvm_mtserve_class_service_cycles"
      in
      List.iter
        (fun (q, o) ->
          match o with
          | Mt_served s when class_arr.(q.q_class).k_name = cs.cs_name ->
              Metrics.observe h s.mo_service
          | _ -> ())
        outcomes)
    class_stats;
  let m_window_series =
    Metrics.series reg
      ~columns:[ "arrivals"; "admitted"; "shed_queue"; "shed_slo" ]
      ~help:"Per dispatch window: multi-tenant admission accounting."
      "htvm_mtserve_window"
  in
  (let win_of q = if open_mode then q.q_arrival / window else 0 in
   let win_ids = ref [] in
   let tbl = Hashtbl.create 16 in
   List.iter
     (fun (q, o) ->
       let w = win_of q in
       let cell =
         match Hashtbl.find_opt tbl w with
         | Some c -> c
         | None ->
             let c = ref (0, 0, 0, 0) in
             Hashtbl.add tbl w c;
             win_ids := w :: !win_ids;
             c
       in
       let arr, adm, sq, ss = !cell in
       let adm, sq, ss =
         match o with
         | Mt_shed_queue _ -> (adm, sq + 1, ss)
         | Mt_shed_slo _ -> (adm, sq, ss + 1)
         | Mt_served _ -> (adm + 1, sq, ss)
       in
       cell := (arr + 1, adm, sq, ss))
     outcomes;
   List.iter
     (fun w ->
       let arr, adm, sq, ss = !(Hashtbl.find tbl w) in
       let ts = if open_mode then (w + 1) * window else 0 in
       Metrics.sample m_window_series ~ts
         [ float_of_int arr; float_of_int adm; float_of_int sq; float_of_int ss ])
     (List.rev !win_ids));
  List.iter
    (fun cs ->
      Metrics.inc
        (Metrics.counter reg ~track:Metrics.Sched
           ~labels:[ ("class", cs.cs_name) ]
           ~help:"Per-class observed SLO violations (fleet-shape dependent)."
           "htvm_mtserve_class_slo_observed_violations_total")
        cs.cs_observed_violations)
    class_stats;
  Array.iter
    (fun i ->
      let labels = [ ("instance", string_of_int i#id) ] in
      let g name help = Metrics.gauge reg ~track:Metrics.Sched ~labels ~help name in
      Metrics.set_int (g "htvm_mtsched_instance_busy_cycles" "Busy cycles.") i#busy;
      Metrics.set_int (g "htvm_mtsched_instance_served" "Requests served.") i#served;
      Metrics.set_int
        (g "htvm_mtsched_instance_swaps" "Model reloads paid by this instance.")
        i#swaps;
      match i#hm with
      | None -> ()
      | Some m ->
          Metrics.set_int
            (g "htvm_mtsched_instance_probe_cycles"
               "Cycles the instance spent on health probes.")
            i#probe_cyc;
          Metrics.set_int
            (g "htvm_mtsched_instance_readmissions"
               "Times the instance rejoined the healthy rotation.")
            (Health.readmissions m))
    instances;
  Metrics.inc
    (Metrics.counter reg ~track:Metrics.Sched
       ~help:"Batches dispatched with no eligible instance in their pool."
       "htvm_mtsched_fail_open_total")
    !mt_fail_open;
  Metrics.set_int
    (Metrics.gauge reg ~track:Metrics.Sched ~help:"End-to-end makespan cycles."
       "htvm_mtsched_makespan_cycles")
    makespan;
  Metrics.set
    (Metrics.gauge reg ~track:Metrics.Sched
       ~help:"Served requests per second of simulated time."
       "htvm_mtsched_throughput_rps")
    throughput;
  Ok
    {
      mt_cfg = cfg;
      mt_class_list = classes;
      mt_resolved_window = window;
      mt_resolved_gap = resolved_gap;
      mt_batch = batch_size;
      mt_outcomes = outcomes;
      mt_served = served;
      mt_shed_queue = shed_queue;
      mt_shed_slo = shed_slo;
      mt_swaps = swaps;
      mt_class_stats = class_stats;
      mt_service = percentiles_of served_list;
      mt_sojourn = percentiles_of sojourn_list;
      mt_makespan = makespan;
      mt_throughput_rps = throughput;
      mt_fail_open = !mt_fail_open;
      mt_instances =
        Array.to_list
          (Array.map
             (fun i ->
               {
                 mi_id = i#id;
                 mi_batches = i#batches;
                 mi_served = i#served;
                 mi_busy = i#busy;
                 mi_swaps = i#swaps;
                 mi_utilization =
                   (if makespan = 0 then 0.0
                    else float_of_int i#busy /. float_of_int makespan);
                 mi_model = Option.map (fun m -> used.(m).m_name) i#loaded;
                 mi_health = Option.map health_stat_of i#hm;
               })
             instances);
      mt_metrics = Metrics.snapshot reg;
    }

(* --- multi-tenant rendering ------------------------------------------- *)

(* The functional ledger of a multi-tenant run: per-request outcomes
   (class, digest, service, predicted sojourn), per-class totals and
   service percentiles. Pure function of the seed (or of the replayed
   trace) — byte-identical at any workers/jobs. *)
let mt_tally r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "htvm-mtserve-tally v1\n";
  Buffer.add_string buf
    (Printf.sprintf
       "seed %d requests %d arrival %s batch %d queue-depth %d window %d \
        placement %s swap-overhead %d\n"
       r.mt_cfg.mt_seed
       (List.length r.mt_outcomes)
       (mt_arrival_to_string r) r.mt_batch r.mt_cfg.mt_queue_depth
       r.mt_resolved_window
       (placement_to_string r.mt_cfg.mt_placement)
       r.mt_cfg.mt_swap_overhead);
  List.iter
    (fun k ->
      Buffer.add_string buf
        (Printf.sprintf "class %s model=%s slo=%s weight=%d\n" k.k_name k.k_model
           (match k.k_slo with None -> "none" | Some t -> string_of_int t)
           k.k_weight))
    r.mt_class_list;
  let class_name i = (List.nth r.mt_class_list i).k_name in
  List.iter
    (fun (q, o) ->
      Buffer.add_string buf
        (match o with
        | Mt_served s ->
            Printf.sprintf "req %d class=%s served digest=%s service=%d \
                            pred-sojourn=%d\n"
              q.q_id (class_name q.q_class) s.mo_digest s.mo_service
              s.mo_pred_sojourn
        | Mt_shed_queue { mo_window } ->
            Printf.sprintf "req %d class=%s shed-queue window=%d\n" q.q_id
              (class_name q.q_class) mo_window
        | Mt_shed_slo { mo_pred_sojourn } ->
            Printf.sprintf "req %d class=%s shed-slo pred-sojourn=%d\n" q.q_id
              (class_name q.q_class) mo_pred_sojourn))
    r.mt_outcomes;
  Buffer.add_string buf
    (Printf.sprintf "outcomes served=%d shed-queue=%d shed-slo=%d\n" r.mt_served
       r.mt_shed_queue r.mt_shed_slo);
  List.iter
    (fun cs ->
      Buffer.add_string buf
        (Printf.sprintf
           "class %s requests=%d served=%d shed-queue=%d shed-slo=%d\n"
           cs.cs_name cs.cs_requests cs.cs_served cs.cs_shed_queue cs.cs_shed_slo);
      pp_percentiles buf (Printf.sprintf "class %s service" cs.cs_name)
        cs.cs_service)
    r.mt_class_stats;
  pp_percentiles buf "service" r.mt_service;
  Buffer.contents buf

let mt_summary r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "served %d/%d requests (%d shed at ingress, %d shed by SLO) on %d \
        instance(s), batch %d, placement %s\n"
       r.mt_served
       (List.length r.mt_outcomes)
       r.mt_shed_queue r.mt_shed_slo r.mt_cfg.mt_workers r.mt_batch
       (placement_to_string r.mt_cfg.mt_placement));
  Buffer.add_string buf
    (Printf.sprintf
       "makespan %d cycles, throughput %.1f req/s, %d model swap(s)\n"
       r.mt_makespan r.mt_throughput_rps r.mt_swaps);
  if r.mt_cfg.mt_health <> None || r.mt_cfg.mt_degraded_instances <> [] then
    Buffer.add_string buf
      (Printf.sprintf "health: %d fail-open dispatch(es)\n" r.mt_fail_open);
  List.iter
    (fun cs ->
      Buffer.add_string buf
        (Printf.sprintf
           "class %s [%s]: %d/%d served, %d shed-queue, %d shed-slo%s, \
            p50=%d p99=%d\n"
           cs.cs_name cs.cs_model cs.cs_served cs.cs_requests cs.cs_shed_queue
           cs.cs_shed_slo
           (match cs.cs_slo with
           | None -> ""
           | Some t ->
               Printf.sprintf ", slo %d: %d observed violation(s)" t
                 cs.cs_observed_violations)
           cs.cs_service.p50 cs.cs_service.p99))
    r.mt_class_stats;
  pp_percentiles buf "service latency (cycles)" r.mt_service;
  pp_percentiles buf "sojourn latency (cycles)" r.mt_sojourn;
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf
           "instance %d: %d batch(es), %d served, %d swap(s), busy %d cycles \
            (%.1f%% utilization)%s"
           i.mi_id i.mi_batches i.mi_served i.mi_swaps i.mi_busy
           (100.0 *. i.mi_utilization)
           (match i.mi_model with
           | None -> ""
           | Some m -> Printf.sprintf ", model %s resident" m)
        ^ (match i.mi_health with
          | None -> ""
          | Some hs ->
              Printf.sprintf
                ", health %s (%d readmission(s), %d probe cycles)"
                (Health.state_label hs.hs_state)
                hs.hs_readmissions hs.hs_probe_cycles)
        ^ "\n"))
    r.mt_instances;
  Buffer.contents buf

let mt_to_json r =
  let class_name i = (List.nth r.mt_class_list i).k_name in
  let outcome_json (q, o) =
    let base =
      [
        ("id", J.Int q.q_id);
        ("class", J.Str (class_name q.q_class));
        ("arrival", J.Int q.q_arrival);
        ("input_seed", J.Int q.q_input_seed);
      ]
    in
    J.Obj
      (base
      @
      match o with
      | Mt_served s ->
          [
            ("outcome", J.Str "served");
            ("instance", J.Int s.mo_instance);
            ("batch", J.Int s.mo_batch);
            ("start", J.Int s.mo_start);
            ("finish", J.Int s.mo_finish);
            ("service_cycles", J.Int s.mo_service);
            ("pred_sojourn_cycles", J.Int s.mo_pred_sojourn);
            ("digest", J.Str s.mo_digest);
          ]
      | Mt_shed_queue { mo_window } ->
          [ ("outcome", J.Str "shed_queue"); ("window", J.Int mo_window) ]
      | Mt_shed_slo { mo_pred_sojourn } ->
          [
            ("outcome", J.Str "shed_slo");
            ("pred_sojourn_cycles", J.Int mo_pred_sojourn);
          ])
  in
  let class_json cs =
    J.Obj
      [
        ("name", J.Str cs.cs_name);
        ("model", J.Str cs.cs_model);
        ("slo_cycles", match cs.cs_slo with None -> J.Null | Some t -> J.Int t);
        ("weight", J.Int cs.cs_weight);
        ("requests", J.Int cs.cs_requests);
        ("served", J.Int cs.cs_served);
        ("shed_queue", J.Int cs.cs_shed_queue);
        ("shed_slo", J.Int cs.cs_shed_slo);
        ("observed_violations", J.Int cs.cs_observed_violations);
        ("service_cycles", percentiles_json cs.cs_service);
      ]
  in
  let instance_json i =
    J.Obj
      [
        ("id", J.Int i.mi_id);
        ("batches", J.Int i.mi_batches);
        ("served", J.Int i.mi_served);
        ("busy_cycles", J.Int i.mi_busy);
        ("swaps", J.Int i.mi_swaps);
        ("utilization", J.Float i.mi_utilization);
        ("model", match i.mi_model with None -> J.Null | Some m -> J.Str m);
        ( "health",
          match i.mi_health with None -> J.Null | Some hs -> health_stat_json hs
        );
      ]
  in
  J.Obj
    [
      ("seed", J.Int r.mt_cfg.mt_seed);
      ("requests", J.Int (List.length r.mt_outcomes));
      ("workers", J.Int r.mt_cfg.mt_workers);
      ("batch", J.Int r.mt_batch);
      ("queue_depth", J.Int r.mt_cfg.mt_queue_depth);
      ("arrival", J.Str (mt_arrival_to_string r));
      ("window_cycles", J.Int r.mt_resolved_window);
      ("dispatch_overhead_cycles", J.Int r.mt_cfg.mt_dispatch_overhead);
      ("swap_overhead_cycles", J.Int r.mt_cfg.mt_swap_overhead);
      ("placement", J.Str (placement_to_string r.mt_cfg.mt_placement));
      ("served", J.Int r.mt_served);
      ("shed_queue", J.Int r.mt_shed_queue);
      ("shed_slo", J.Int r.mt_shed_slo);
      ("swaps", J.Int r.mt_swaps);
      ("fail_open", J.Int r.mt_fail_open);
      ("service_cycles", percentiles_json r.mt_service);
      ("sojourn_cycles", percentiles_json r.mt_sojourn);
      ("makespan_cycles", J.Int r.mt_makespan);
      ("throughput_rps", J.Float r.mt_throughput_rps);
      ("classes", J.List (List.map class_json r.mt_class_stats));
      ("instances", J.List (List.map instance_json r.mt_instances));
      ("outcomes", J.List (List.map outcome_json r.mt_outcomes));
      ("metrics", Metrics.to_json r.mt_metrics);
    ]

(* --- rendering -------------------------------------------------------- *)

let arrival_to_string report =
  match report.r_config.arrival with
  | Closed -> "closed"
  | Poisson _ -> Printf.sprintf "poisson gap %d" report.r_mean_gap

(* The functional ledger: everything here is a pure function of the
   config seed (and the artifact), never of workers or jobs. Instance
   assignments, waits, makespan and throughput are deliberately absent. *)
let tally r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "htvm-serve-tally v2\n";
  Buffer.add_string buf
    (Printf.sprintf
       "seed %d requests %d arrival %s batch %d queue-depth %d window %d \
        input-mix %d\n"
       r.r_config.seed r.r_config.requests (arrival_to_string r)
       r.r_config.max_batch r.r_config.queue_depth r.r_window
       r.r_config.input_mix);
  Buffer.add_string buf
    (Printf.sprintf "plan %s retry-budget %d\n"
       (Fault.Plan.to_string r.r_config.plan)
       r.r_config.retry_budget);
  (* Health lines are conditional, like the slo footer: the resolved
     lifecycle config and the predicted-plane stats are pure functions
     of the config seed. *)
  (match r.r_health with
  | Some h ->
      let c = h.h_config in
      Buffer.add_string buf
        (Printf.sprintf
           "health threshold=%d probation=%d interval=%d cost=%d passes=%d \
            cap=%d fail-ppm=%d seed=%d\n"
           c.Health.fault_threshold c.Health.probation_window
           c.Health.probe_interval c.Health.probe_cost c.Health.pass_threshold
           c.Health.backoff_cap
           (int_of_float (c.Health.probe_fail_prob *. 1_000_000.))
           c.Health.probe_seed)
  | None -> ());
  List.iter
    (fun (req, o) ->
      Buffer.add_string buf
        (match o with
        | Served s ->
            Printf.sprintf
              "req %d served digest=%s service=%d pred-sojourn=%d faults=%d/%d \
               retries=%d\n"
              req.r_id s.o_digest s.o_service s.o_pred_sojourn s.o_detected
              s.o_silent s.o_retries
        | Rejected { o_window } ->
            Printf.sprintf "req %d rejected window=%d\n" req.r_id o_window
        | Aborted a ->
            Printf.sprintf "req %d aborted site=%s attempts=%d\n" req.r_id a.o_site
              a.o_attempts))
    r.r_outcomes;
  Buffer.add_string buf
    (Printf.sprintf "outcomes served=%d rejected=%d aborted=%d\n" r.r_served
       r.r_rejected r.r_aborted);
  (* Distinct-payload accounting: how much the input-mix pool collapsed
     the stream, and how many distinct answers it produced. A pure
     function of the seed, like every other tally line. *)
  let distinct xs = List.length (List.sort_uniq compare xs) in
  Buffer.add_string buf
    (Printf.sprintf "digests distinct-inputs=%d distinct-outputs=%d\n"
       (distinct (List.map (fun (req, _) -> req.r_input_seed) r.r_outcomes))
       (distinct
          (List.filter_map
             (function _, Served s -> Some s.o_digest | _ -> None)
             r.r_outcomes)));
  (* Predicted violations only: the observed count depends on the fleet
     shape and has no place in the functional ledger. *)
  (match r.r_slo with
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf "slo target=%d pred-violations=%d pred-violation-rate=%.4f\n"
           s.s_target s.s_pred_violations s.s_pred_violation_rate)
  | None -> ());
  (* Predicted plane only: observed fail-open and per-instance lifecycle
     stats move with the fleet shape and stay out of the ledger. *)
  (match r.r_health with
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf
           "health pred-state=%s transitions=%d readmissions=%d relapses=%d \
            probe-cycles=%d fail-open=%d shed=%d\n"
           (Health.state_label h.h_pred_state)
           h.h_pred_transitions h.h_pred_readmissions h.h_pred_relapses
           h.h_pred_probe_cycles h.h_pred_fail_open h.h_shed)
  | None -> ());
  pp_percentiles buf "service" r.r_service;
  Buffer.contents buf

let summary r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "served %d/%d requests (%d shed, %d aborted) on %d instance(s), %d \
        batch(es)\n"
       r.r_served r.r_config.requests r.r_rejected r.r_aborted r.r_config.workers
       (List.fold_left (fun acc i -> acc + i.i_batches) 0 r.r_instances));
  Buffer.add_string buf
    (Printf.sprintf "makespan %d cycles, throughput %.1f req/s, shed rate %.1f%%\n"
       r.r_makespan r.r_throughput_rps (100.0 *. r.r_shed_rate));
  if r.r_config.memoize then
    Buffer.add_string buf
      (Printf.sprintf "memoize: %d hit(s), %d distinct input(s) executed\n"
         r.r_memo_hits r.r_memo_misses);
  (match r.r_slo with
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "slo %d cycles: %d predicted / %d observed violation(s), predicted \
            rate %.1f%%\n"
           s.s_target s.s_pred_violations s.s_observed_violations
           (100.0 *. s.s_pred_violation_rate))
  | None -> ());
  (match r.r_health with
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf
           "health: pred %s, %d readmission(s), %d relapse(s), %d probe \
            cycles, %d shed, %d pred / %d observed fail-open\n"
           (Health.state_label h.h_pred_state)
           h.h_pred_readmissions h.h_pred_relapses h.h_pred_probe_cycles
           h.h_shed h.h_pred_fail_open r.r_fail_open)
  | None -> ());
  pp_percentiles buf "service latency (cycles)" r.r_service;
  pp_percentiles buf "sojourn latency (cycles)" r.r_sojourn;
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf
           "instance %d: %d batch(es), %d served, %d aborted, busy %d cycles \
            (%.1f%% utilization), %d fault(s)%s%s\n"
           i.i_id i.i_batches i.i_served i.i_aborted i.i_busy
           (100.0 *. i.i_utilization) i.i_faults
           (match i.i_degraded_at with
           | None -> ""
           | Some 0 -> ", degraded from start"
           | Some t -> Printf.sprintf ", degraded at cycle %d" t)
           (match i.i_health with
           | None -> ""
           | Some hs ->
               Printf.sprintf ", health %s (%d readmission(s), %d probe cycles)"
                 (Health.state_label hs.hs_state)
                 hs.hs_readmissions hs.hs_probe_cycles)))
    r.r_instances;
  Buffer.contents buf

let to_json r =
  let outcome_json (req, o) =
    let base = [ ("id", J.Int req.r_id); ("arrival", J.Int req.r_arrival) ] in
    J.Obj
      (base
      @
      match o with
      | Served s ->
          [
            ("outcome", J.Str "served");
            ("instance", J.Int s.o_instance);
            ("batch", J.Int s.o_batch);
            ("start", J.Int s.o_start);
            ("finish", J.Int s.o_finish);
            ("service_cycles", J.Int s.o_service);
            ("pred_sojourn_cycles", J.Int s.o_pred_sojourn);
            ("wait_cycles", J.Int s.o_wait);
            ("digest", J.Str s.o_digest);
            ("faults_detected", J.Int s.o_detected);
            ("faults_silent", J.Int s.o_silent);
            ("retries", J.Int s.o_retries);
          ]
      | Rejected { o_window } ->
          [ ("outcome", J.Str "rejected"); ("window", J.Int o_window) ]
      | Aborted a ->
          [
            ("outcome", J.Str "aborted");
            ("instance", J.Int a.o_instance);
            ("batch", J.Int a.o_batch);
            ("site", J.Str a.o_site);
            ("attempts", J.Int a.o_attempts);
          ])
  in
  let instance_json i =
    J.Obj
      [
        ("id", J.Int i.i_id);
        ("batches", J.Int i.i_batches);
        ("served", J.Int i.i_served);
        ("aborted", J.Int i.i_aborted);
        ("busy_cycles", J.Int i.i_busy);
        ("utilization", J.Float i.i_utilization);
        ("faults", J.Int i.i_faults);
        ( "degraded_at",
          match i.i_degraded_at with None -> J.Null | Some t -> J.Int t );
        ( "health",
          match i.i_health with None -> J.Null | Some hs -> health_stat_json hs
        );
        ("dma_bytes_in", J.Int i.i_totals.Sim.Counters.dma_bytes_in);
        ("dma_bytes_out", J.Int i.i_totals.Sim.Counters.dma_bytes_out);
      ]
  in
  J.Obj
    [
      ("seed", J.Int r.r_config.seed);
      ("requests", J.Int r.r_config.requests);
      ("workers", J.Int r.r_config.workers);
      ("max_batch", J.Int r.r_config.max_batch);
      ("queue_depth", J.Int r.r_config.queue_depth);
      ("arrival", J.Str (arrival_to_string r));
      ("window_cycles", J.Int r.r_window);
      ("dispatch_overhead_cycles", J.Int r.r_config.dispatch_overhead);
      ("plan", J.Str (Fault.Plan.to_string r.r_config.plan));
      ("use_plan", J.Bool r.r_config.use_plan);
      ("input_mix", J.Int r.r_config.input_mix);
      ("memoize", J.Bool r.r_config.memoize);
      ("memo_hits", J.Int r.r_memo_hits);
      ("memo_misses", J.Int r.r_memo_misses);
      ("served", J.Int r.r_served);
      ("rejected", J.Int r.r_rejected);
      ("aborted", J.Int r.r_aborted);
      ("shed_rate", J.Float r.r_shed_rate);
      ("service_cycles", percentiles_json r.r_service);
      ("sojourn_cycles", percentiles_json r.r_sojourn);
      ("makespan_cycles", J.Int r.r_makespan);
      ("throughput_rps", J.Float r.r_throughput_rps);
      ( "slo",
        match r.r_slo with
        | None -> J.Null
        | Some s ->
            J.Obj
              [
                ("target_cycles", J.Int s.s_target);
                ("pred_violations", J.Int s.s_pred_violations);
                ("observed_violations", J.Int s.s_observed_violations);
                ("pred_violation_rate", J.Float s.s_pred_violation_rate);
              ] );
      ( "health",
        match r.r_health with
        | None -> J.Null
        | Some h ->
            J.Obj
              [
                ("pred_state", J.Str (Health.state_label h.h_pred_state));
                ("pred_transitions", J.Int h.h_pred_transitions);
                ("pred_readmissions", J.Int h.h_pred_readmissions);
                ("pred_relapses", J.Int h.h_pred_relapses);
                ("pred_probe_cycles", J.Int h.h_pred_probe_cycles);
                ("pred_fail_open", J.Int h.h_pred_fail_open);
                ("shed", J.Int h.h_shed);
                ( "probation_window",
                  J.Int h.h_config.Health.probation_window );
                ("probe_interval", J.Int h.h_config.Health.probe_interval);
                ("probe_cost", J.Int h.h_config.Health.probe_cost);
                ("backoff_cap", J.Int h.h_config.Health.backoff_cap);
              ] );
      ("fail_open", J.Int r.r_fail_open);
      ("instances", J.List (List.map instance_json r.r_instances));
      ("outcomes", J.List (List.map outcome_json r.r_outcomes));
      ("metrics", Metrics.to_json r.r_metrics);
    ]
