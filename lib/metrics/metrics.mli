(** Fleet telemetry: a dependency-free, deterministic metrics registry.

    A {!t} is a typed registry of instruments — monotone {!counter}s,
    last-write {!gauge}s, fixed-bucket {!histogram}s and cycle-stamped
    {!series} — plus three exposition formats (Prometheus text, JSON via
    {!Trace.Json}, CSV). It is the metrics-pipeline counterpart of
    {!Trace}: traces answer "what happened when", metrics answer "how
    much, how often, how it trended per window".

    {b Determinism contract.} Every instrument lives on one of three
    {!track}s:
    - {!Cycles} — the simulated-cycle domain. Everything registered here
      must be a pure function of the workload seed: byte-identical at
      any fleet size ([--workers]) and any host parallelism ([--jobs]).
      This is the serving layer's tally-invariance contract extended to
      telemetry, and [tools/verify.sh] enforces it by diffing dumps.
    - {!Sched} — cycle-stamped but schedule-dependent: per-instance
      utilization, in-flight depth, running throughput. These
      legitimately move with the fleet shape, exactly like makespan and
      throughput in {!Serve.report}.
    - {!Wall} — host wall-clock (compile-phase seconds). Never
      deterministic; always rendered last so consumers can strip it.

    Exposition renders tracks in that order, each introduced by a
    [# track <name>] marker line, so "strip everything from the first
    non-deterministic marker" is a one-liner in shell ({!cycles_section}
    does the same in-process).

    Registration order is the exposition order within a track, and
    registering the same (name, labels) pair twice raises
    [Invalid_argument] — a duplicate is always a plumbing bug, never a
    legitimate aggregation (merge {!snapshot}s for that). *)

type track =
  | Cycles  (** deterministic simulated-cycle domain *)
  | Sched  (** cycle-stamped, fleet-shape dependent *)
  | Wall  (** host wall-clock, non-deterministic *)

val track_name : track -> string
(** ["cycles"], ["sched"], ["wall"]. *)

type t
(** A mutable registry. Not domain-safe: registries are owned by the
    coordinating domain (the serving loop and the compile driver both
    record from the submitting domain only). *)

type counter
type gauge
type histogram
type series

val create : unit -> t

val counter :
  t -> ?track:track -> ?labels:(string * string) list -> ?help:string ->
  string -> counter
(** Register a monotone counter (default track {!Cycles}, no labels).
    @raise Invalid_argument on an invalid metric/label name, a duplicate
    label name, or a (name, labels) pair already registered. *)

val gauge :
  t -> ?track:track -> ?labels:(string * string) list -> ?help:string ->
  string -> gauge
(** Register a gauge holding one float (last write wins). *)

val histogram :
  t -> ?track:track -> ?labels:(string * string) list -> ?help:string ->
  buckets:int list -> string -> histogram
(** Register a fixed-bucket histogram. [buckets] are inclusive upper
    bounds and must be strictly increasing; an implicit [+Inf] bucket
    catches the rest. An observation [v] lands in the first bucket with
    [v <= bound].
    @raise Invalid_argument if [buckets] is not strictly increasing (or
    on any registration error above). *)

val series :
  t -> ?track:track -> ?labels:(string * string) list -> ?help:string ->
  columns:string list -> string -> series
(** Register a cycle-timestamped time series with a fixed column set.
    Each column is exposed as [<name>_<column>]; every sample carries
    the caller's timestamp (simulated cycles).
    @raise Invalid_argument on an empty or duplicated column list (or on
    any registration error above). *)

val inc : counter -> int -> unit
(** Add to a counter. @raise Invalid_argument on a negative amount
    (counters are monotone). *)

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record one observation into its bucket and the sum/count totals. *)

val sample : series -> ts:int -> float list -> unit
(** Append one sample. @raise Invalid_argument when the value count does
    not match the registered column count. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : int list;  (** registered upper bounds *)
      counts : int list;  (** per-bucket (non-cumulative), +Inf last *)
      sum : int;
      count : int;
    }
  | Series of { columns : string list; samples : (int * float list) list }

type metric = {
  m_name : string;
  m_track : track;
  m_labels : (string * string) list;  (** sorted by label name *)
  m_help : string;
  m_value : value;
}

type snapshot = metric list
(** Immutable copy of a registry, in registration order. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise combination, associative by construction: counters add,
    gauges keep the maximum (a gauge surviving a merge is a high-water
    mark), histograms add per-bucket, series concatenate samples
    (left's before right's). Metrics present on one side only pass
    through; the result keeps the left order, then right-only metrics in
    their order.
    @raise Invalid_argument when the two sides disagree on a metric's
    kind, track, bucket bounds or column set. *)

(** {1 Exposition} *)

val to_prometheus : snapshot -> string
(** Prometheus text format: [# HELP] / [# TYPE] per metric, cumulative
    [_bucket{le=...}] / [_sum] / [_count] lines per histogram, one line
    per series sample with the cycle timestamp in the optional
    timestamp field. Tracks appear in {!Cycles}, {!Sched}, {!Wall}
    order, each introduced by a [# track <name>] marker (emitted even
    when empty, so stripping is stable). *)

val to_json : snapshot -> Trace.Json.t
(** [{"version": 1, "tracks": {"cycles": [...], "sched": [...],
    "wall": [...]}}]; floats use {!Trace.Json}'s round-trippable
    rendering. *)

val to_csv : snapshot -> string
(** Header [track,name,labels,kind,field,ts,value]; one row per scalar,
    histogram bucket ([field] = [le:<bound>], [sum], [count]) and series
    sample ([field] = column, [ts] = cycles). *)

val cycles_section : string -> string
(** The deterministic prefix of a {!to_prometheus} dump: everything up
    to (excluding) the first [# track sched] or [# track wall] marker —
    what [tools/verify.sh] diffs across worker counts. *)

type format = Prom | Json | Csv

val format_of_string : string -> (format, string) result
(** ["prom"], ["json"] or ["csv"]. *)

val render : format -> snapshot -> string
