(* Deterministic metrics registry with Prometheus/JSON/CSV exposition.

   Three instrument kinds (counter, gauge, fixed-bucket histogram) plus a
   cycle-stamped time series, each pinned to a track that states its
   determinism contract: Cycles values must be byte-identical at any
   fleet size and host parallelism, Sched values are cycle-stamped but
   schedule-dependent, Wall values are host wall-clock. Exposition
   renders tracks in that order behind `# track` markers so consumers
   (and tools/verify.sh) can cut the dump at the first non-deterministic
   marker.

   Registration order is kept and is the exposition order within a
   track; duplicate (name, labels) registration raises Invalid_argument
   because a duplicate is a plumbing bug — cross-run aggregation goes
   through snapshot merge instead. *)

module J = Trace.Json

type track = Cycles | Sched | Wall

let track_name = function Cycles -> "cycles" | Sched -> "sched" | Wall -> "wall"

type counter = { mutable c_total : int }
type gauge = { mutable g_value : float }

type histogram = {
  h_bounds : int array;  (* strictly increasing upper bounds *)
  h_bins : int array;  (* length = bounds + 1; last is +Inf *)
  mutable h_sum : int;
  mutable h_count : int;
}

type series = {
  se_columns : string list;
  mutable se_samples : (int * float list) list;  (* newest first *)
}

type instr =
  | I_counter of counter
  | I_gauge of gauge
  | I_hist of histogram
  | I_series of series

type meta = {
  name : string;
  track : track;
  labels : (string * string) list;  (* sorted by label name *)
  help : string;
}

type t = {
  mutable rev_instrs : (meta * instr) list;  (* newest first *)
  keys : (string, unit) Hashtbl.t;
}

let create () = { rev_instrs = []; keys = Hashtbl.create 32 }

(* --- validation -------------------------------------------------------- *)

let valid_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      ^ "}"

let key_of name labels = name ^ render_labels labels

let register t ?(track = Cycles) ?(labels = []) ?(help = "") name instr =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S on %s" k name))
    labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup labels with
  | Some l -> invalid_arg (Printf.sprintf "Metrics: duplicate label %S on %s" l name)
  | None -> ());
  let key = key_of name labels in
  if Hashtbl.mem t.keys key then
    invalid_arg (Printf.sprintf "Metrics: duplicate registration of %s" key);
  Hashtbl.add t.keys key ();
  t.rev_instrs <- ({ name; track; labels; help }, instr) :: t.rev_instrs

let counter t ?track ?labels ?help name =
  let c = { c_total = 0 } in
  register t ?track ?labels ?help name (I_counter c);
  c

let gauge t ?track ?labels ?help name =
  let g = { g_value = 0.0 } in
  register t ?track ?labels ?help name (I_gauge g);
  g

let histogram t ?track ?labels ?help ~buckets name =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  if not (increasing buckets) then
    invalid_arg
      (Printf.sprintf "Metrics: histogram %s buckets must be strictly increasing" name);
  let h =
    {
      h_bounds = Array.of_list buckets;
      h_bins = Array.make (List.length buckets + 1) 0;
      h_sum = 0;
      h_count = 0;
    }
  in
  register t ?track ?labels ?help name (I_hist h);
  h

let series t ?track ?labels ?help ~columns name =
  if columns = [] then
    invalid_arg (Printf.sprintf "Metrics: series %s needs at least one column" name);
  if List.length (List.sort_uniq compare columns) <> List.length columns then
    invalid_arg (Printf.sprintf "Metrics: series %s has duplicate columns" name);
  List.iter
    (fun c ->
      if not (valid_metric_name c) then
        invalid_arg (Printf.sprintf "Metrics: invalid series column %S on %s" c name))
    columns;
  let s = { se_columns = columns; se_samples = [] } in
  register t ?track ?labels ?help name (I_series s);
  s

(* --- recording --------------------------------------------------------- *)

let inc c n =
  if n < 0 then invalid_arg "Metrics.inc: counters are monotone (negative amount)";
  c.c_total <- c.c_total + n

let set g v = g.g_value <- v
let set_int g v = g.g_value <- float_of_int v

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bin i = if i >= n then n else if v <= h.h_bounds.(i) then i else bin (i + 1) in
  let i = bin 0 in
  h.h_bins.(i) <- h.h_bins.(i) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_count <- h.h_count + 1

let sample s ~ts values =
  if List.length values <> List.length s.se_columns then
    invalid_arg "Metrics.sample: value count does not match the column count";
  s.se_samples <- (ts, values) :: s.se_samples

(* --- snapshots --------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : int list; counts : int list; sum : int; count : int }
  | Series of { columns : string list; samples : (int * float list) list }

type metric = {
  m_name : string;
  m_track : track;
  m_labels : (string * string) list;
  m_help : string;
  m_value : value;
}

type snapshot = metric list

let snapshot t =
  List.rev_map
    (fun (meta, instr) ->
      {
        m_name = meta.name;
        m_track = meta.track;
        m_labels = meta.labels;
        m_help = meta.help;
        m_value =
          (match instr with
          | I_counter c -> Counter c.c_total
          | I_gauge g -> Gauge g.g_value
          | I_hist h ->
              Histogram
                {
                  bounds = Array.to_list h.h_bounds;
                  counts = Array.to_list h.h_bins;
                  sum = h.h_sum;
                  count = h.h_count;
                }
          | I_series s ->
              Series { columns = s.se_columns; samples = List.rev s.se_samples });
      })
    t.rev_instrs

(* Pointwise combination. Every rule is associative on its own (integer
   addition, max, per-bucket addition, concatenation) and the union
   keeps left-then-new-right order, so merge itself is associative — the
   test suite checks this on concrete snapshots. *)
let merge a b =
  let mkey m = key_of m.m_name m.m_labels in
  let combine x y =
    if x.m_track <> y.m_track then
      invalid_arg
        (Printf.sprintf "Metrics.merge: %s registered on tracks %s and %s" (mkey x)
           (track_name x.m_track) (track_name y.m_track));
    let value =
      match (x.m_value, y.m_value) with
      | Counter m, Counter n -> Counter (m + n)
      | Gauge m, Gauge n -> Gauge (Float.max m n)
      | Histogram hx, Histogram hy ->
          if hx.bounds <> hy.bounds then
            invalid_arg
              (Printf.sprintf "Metrics.merge: %s bucket bounds differ" (mkey x));
          Histogram
            {
              bounds = hx.bounds;
              counts = List.map2 ( + ) hx.counts hy.counts;
              sum = hx.sum + hy.sum;
              count = hx.count + hy.count;
            }
      | Series sx, Series sy ->
          if sx.columns <> sy.columns then
            invalid_arg (Printf.sprintf "Metrics.merge: %s columns differ" (mkey x));
          Series { columns = sx.columns; samples = sx.samples @ sy.samples }
      | _ ->
          invalid_arg
            (Printf.sprintf "Metrics.merge: %s registered with different kinds" (mkey x))
    in
    { x with m_value = value }
  in
  let merged_left =
    List.map
      (fun x ->
        match List.find_opt (fun y -> mkey y = mkey x) b with
        | Some y -> combine x y
        | None -> x)
      a
  in
  let right_only =
    List.filter (fun y -> not (List.exists (fun x -> mkey x = mkey y) a)) b
  in
  merged_left @ right_only

(* --- exposition -------------------------------------------------------- *)

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else J.float_repr f

let track_order = [ Cycles; Sched; Wall ]

let track_marker track =
  Printf.sprintf "# track %s %s" (track_name track)
    (match track with
    | Cycles -> "(deterministic simulated-cycle domain)"
    | Sched -> "(cycle-stamped, fleet-shape dependent)"
    | Wall -> "(host wall-clock, non-deterministic)")

let by_track snap = List.map (fun tr -> (tr, List.filter (fun m -> m.m_track = tr) snap)) track_order

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus snap =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let announced = Hashtbl.create 16 in
  add "# htvm-metrics v1\n";
  List.iter
    (fun (track, metrics) ->
      add "%s\n" (track_marker track);
      List.iter
        (fun m ->
          (* One HELP/TYPE per metric name: label variants share them. *)
          let header kind name =
            if not (Hashtbl.mem announced name) then begin
              Hashtbl.add announced name ();
              if m.m_help <> "" then add "# HELP %s %s\n" name (escape_help m.m_help);
              add "# TYPE %s %s\n" name kind
            end
          in
          let labels = render_labels m.m_labels in
          match m.m_value with
          | Counter n ->
              header "counter" m.m_name;
              add "%s%s %d\n" m.m_name labels n
          | Gauge v ->
              header "gauge" m.m_name;
              add "%s%s %s\n" m.m_name labels (prom_float v)
          | Histogram { bounds; counts; sum; count } ->
              header "histogram" m.m_name;
              let le bound =
                render_labels (m.m_labels @ [ ("le", bound) ])
              in
              let cum = ref 0 in
              List.iter2
                (fun bound n ->
                  cum := !cum + n;
                  add "%s_bucket%s %d\n" m.m_name (le (string_of_int bound)) !cum)
                bounds
                (List.filteri (fun i _ -> i < List.length bounds) counts);
              add "%s_bucket%s %d\n" m.m_name (le "+Inf") count;
              add "%s_sum%s %d\n" m.m_name labels sum;
              add "%s_count%s %d\n" m.m_name labels count
          | Series { columns; samples } ->
              List.iteri
                (fun i col ->
                  let name = m.m_name ^ "_" ^ col in
                  header "gauge" name;
                  List.iter
                    (fun (ts, values) ->
                      add "%s%s %s %d\n" name labels (prom_float (List.nth values i)) ts)
                    samples)
                columns)
        metrics)
    (by_track snap);
  Buffer.contents buf

let cycles_section dump =
  let lines = String.split_on_char '\n' dump in
  let rec keep acc = function
    | [] -> List.rev acc
    | line :: _
      when line = track_marker Sched || line = track_marker Wall ->
        List.rev acc
    | line :: rest -> keep (line :: acc) rest
  in
  String.concat "\n" (keep [] lines) ^ "\n"

let to_json snap =
  let metric_json m =
    let base =
      [
        ("name", J.Str m.m_name);
        ("labels", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) m.m_labels));
      ]
    in
    let base = if m.m_help = "" then base else base @ [ ("help", J.Str m.m_help) ] in
    J.Obj
      (base
      @
      match m.m_value with
      | Counter n -> [ ("kind", J.Str "counter"); ("value", J.Int n) ]
      | Gauge v -> [ ("kind", J.Str "gauge"); ("value", J.Float v) ]
      | Histogram { bounds; counts; sum; count } ->
          [
            ("kind", J.Str "histogram");
            ("bounds", J.List (List.map (fun b -> J.Int b) bounds));
            ("counts", J.List (List.map (fun n -> J.Int n) counts));
            ("sum", J.Int sum);
            ("count", J.Int count);
          ]
      | Series { columns; samples } ->
          [
            ("kind", J.Str "series");
            ("columns", J.List (List.map (fun c -> J.Str c) columns));
            ( "samples",
              J.List
                (List.map
                   (fun (ts, values) ->
                     J.Obj
                       [
                         ("ts", J.Int ts);
                         ("values", J.List (List.map (fun v -> J.Float v) values));
                       ])
                   samples) );
          ])
  in
  J.Obj
    [
      ("version", J.Int 1);
      ( "tracks",
        J.Obj
          (List.map
             (fun (track, metrics) ->
               (track_name track, J.List (List.map metric_json metrics)))
             (by_track snap)) );
    ]

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let to_csv snap =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "track,name,labels,kind,field,ts,value\n";
  let row ~track ~name ~labels ~kind ~field ~ts ~value =
    Buffer.add_string buf
      (String.concat ","
         (List.map csv_field [ track; name; labels; kind; field; ts; value ]));
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (track, metrics) ->
      let track = track_name track in
      List.iter
        (fun m ->
          let labels =
            String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) m.m_labels)
          in
          let row = row ~track ~name:m.m_name ~labels in
          match m.m_value with
          | Counter n -> row ~kind:"counter" ~field:"" ~ts:"" ~value:(string_of_int n)
          | Gauge v -> row ~kind:"gauge" ~field:"" ~ts:"" ~value:(prom_float v)
          | Histogram { bounds; counts; sum; count } ->
              List.iteri
                (fun i n ->
                  let field =
                    if i < List.length bounds then
                      "le:" ^ string_of_int (List.nth bounds i)
                    else "le:+Inf"
                  in
                  row ~kind:"histogram" ~field ~ts:"" ~value:(string_of_int n))
                counts;
              row ~kind:"histogram" ~field:"sum" ~ts:"" ~value:(string_of_int sum);
              row ~kind:"histogram" ~field:"count" ~ts:"" ~value:(string_of_int count)
          | Series { columns; samples } ->
              List.iter
                (fun (ts, values) ->
                  List.iter2
                    (fun col v ->
                      row ~kind:"series" ~field:col ~ts:(string_of_int ts)
                        ~value:(prom_float v))
                    columns values)
                samples)
        metrics)
    (by_track snap);
  Buffer.contents buf

type format = Prom | Json | Csv

let format_of_string = function
  | "prom" -> Ok Prom
  | "json" -> Ok Json
  | "csv" -> Ok Csv
  | other -> Error (Printf.sprintf "unknown metrics format %S (prom|json|csv)" other)

let render = function
  | Prom -> to_prometheus
  | Json -> fun snap -> J.to_string (to_json snap) ^ "\n"
  | Csv -> to_csv
