module L = Ir.Layer
module Dtype = Tensor.Dtype

type result = {
  output : Tensor.t;
  counters : Sim.Counters.t;
  solution : Dory.Tiling.solution;
  schedule : Dory.Schedule.t;
}

let numel shape = Array.fold_left ( * ) 1 shape

type failure =
  | Infeasible of Dory.Tiling.infeasible
  | Diverged of { layer : string }

let failure_to_string = function
  | Infeasible inf -> Dory.Tiling.infeasible_to_string inf
  | Diverged { layer } ->
      Printf.sprintf "tiled execution diverged from reference for %s" layer

let run_single_layer ?(platform = Arch.Diana.platform) ~accel ~tiling ?(input_seed = 7)
    (layer : L.t) =
  match Dory.Tiling.solve tiling accel layer with
  | Error e -> Error (Infeasible e)
  | Ok solution ->
      let schedule =
        Dory.Schedule.build layer ~accel_name:accel.Arch.Accel.accel_name
          ~tile:solution.Dory.Tiling.tile ~double_buffer:tiling.Dory.Tiling.double_buffer
      in
      let l2 = Sim.Mem.create "L2" platform.Arch.Platform.l2.Arch.Memory.size_bytes in
      let l1 = Sim.Mem.create "L1" platform.Arch.Platform.l1.Arch.Memory.size_bytes in
      Sim.Mem.fill l1 0x5A;
      let rng = Util.Rng.create input_seed in
      let input = Tensor.random rng layer.L.in_dtype layer.L.in_shape in
      let second =
        match layer.L.kind with
        | L.Add -> Some (Tensor.random rng layer.L.in_dtype layer.L.in_shape)
        | L.Conv _ | L.Dense | L.Pool _ -> None
      in
      let in_bytes = numel layer.L.in_shape * Dtype.sim_bytes layer.L.in_dtype in
      Sim.Mem.write_tensor l2 0 input;
      let in_offsets =
        match second with
        | None -> [ 0 ]
        | Some s ->
            Sim.Mem.write_tensor l2 in_bytes s;
            [ 0; in_bytes ]
      in
      let out_offset = in_bytes * List.length in_offsets in
      let out_bytes = numel layer.L.out_shape * Dtype.sim_bytes layer.L.out_dtype in
      let weights_offset, bias_offset =
        let woff = out_offset + out_bytes in
        match layer.L.weights with
        | None -> (-1, -1)
        | Some w ->
            Sim.Mem.write_tensor l2 woff w;
            let boff = woff + Tensor.sim_bytes w in
            (match layer.L.bias with
            | None -> ()
            | Some b -> Sim.Mem.write_tensor l2 boff b);
            (woff, if layer.L.bias = None then -1 else boff)
      in
      let counters =
        Sim.Exec_accel.run ~platform ~accel ~l2 ~l1
          ~buffers:{ Sim.Exec_accel.in_offsets; out_offset; weights_offset; bias_offset }
          schedule
      in
      let output = Sim.Mem.read_tensor l2 out_offset layer.L.out_dtype layer.L.out_shape in
      let reference = L.execute layer ?second input in
      if not (Tensor.equal reference output) then
        Error (Diverged { layer = L.describe layer })
      else Ok { output; counters; solution; schedule }

let peak_throughput layer r =
  float_of_int (L.macs layer) /. float_of_int (Sim.Counters.peak r.counters)

let full_throughput layer r =
  float_of_int (L.macs layer) /. float_of_int r.counters.Sim.Counters.wall
