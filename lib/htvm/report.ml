module J = Trace.Json

(* Machine-readable counterpart of [to_markdown]; the schema is documented
   in DESIGN.md ("JSON report schema"). *)
let to_json_value ?(energy = Sim.Energy.diana_defaults) (artifact : Compile.artifact)
    (report : Sim.Machine.report) =
  let cfg = artifact.Compile.cfg in
  let platform = cfg.Compile.platform in
  let counters_json (c : Sim.Counters.t) =
    [
      ("wall", J.Int c.Sim.Counters.wall);
      ("accel_compute", J.Int c.Sim.Counters.accel_compute);
      ("weight_load", J.Int c.Sim.Counters.weight_load);
      ("dma_in", J.Int c.Sim.Counters.dma_in);
      ("dma_out", J.Int c.Sim.Counters.dma_out);
      ("host_overhead", J.Int c.Sim.Counters.host_overhead);
      ("cpu_compute", J.Int c.Sim.Counters.cpu_compute);
      ("stall", J.Int c.Sim.Counters.stall);
      ("dma_bytes_in", J.Int c.Sim.Counters.dma_bytes_in);
      ("dma_bytes_out", J.Int c.Sim.Counters.dma_bytes_out);
      ("utilization", J.Float (Sim.Counters.utilization c));
    ]
    (* Fault accounting appears only when a campaign actually did
       something, so fault-free reports are byte-identical to the
       pre-resilience schema (and an empty plan is a strict no-op). *)
    @ (if
         c.Sim.Counters.faults_detected = 0
         && c.Sim.Counters.faults_silent = 0
         && c.Sim.Counters.retries = 0
         && c.Sim.Counters.retry_cycles = 0
         && c.Sim.Counters.fault_stall = 0
       then []
       else
         [
           ("faults_detected", J.Int c.Sim.Counters.faults_detected);
           ("faults_silent", J.Int c.Sim.Counters.faults_silent);
           ("retries", J.Int c.Sim.Counters.retries);
           ("retry_cycles", J.Int c.Sim.Counters.retry_cycles);
           ("fault_stall", J.Int c.Sim.Counters.fault_stall);
         ])
  in
  let demotions_json =
    match artifact.Compile.demotions with
    | [] -> []
    | ds ->
        [
          ( "demotions",
            J.List
              (List.map
                 (fun (d : Compile.demotion) ->
                   J.Obj
                     [
                       ("layer", J.Str d.Compile.d_layer);
                       ("from", J.Str d.Compile.d_from);
                       ("to", J.Str d.Compile.d_to);
                       ( "reason_class",
                         J.Str
                           (match d.Compile.d_reason with
                           | Compile.Degraded_target -> "degraded_target"
                           | Compile.Infeasible _ -> "infeasible"
                           | Compile.Over_budget _ -> "over_budget") );
                       ( "reason",
                         J.Str
                           (Compile.demotion_reason_to_string d.Compile.d_reason)
                       );
                     ])
                 ds) );
        ]
  in
  let layers =
    List.map2
      (fun (li : Compile.layer_info) (name, (c : Sim.Counters.t)) ->
        J.Obj
          ([
             ("index", J.Int li.Compile.li_index);
             ("target", J.Str li.Compile.li_target);
             ("kernel", J.Str li.Compile.li_desc);
             ("step", J.Str name);
             ("tiled", J.Bool li.Compile.li_tiled);
             ( "tile",
               match li.Compile.li_tile with
               | Some t -> J.Str (Arch.Tile.to_string t)
               | None -> J.Null );
           ]
          @ counters_json c))
      artifact.Compile.layers report.Sim.Machine.per_step
  in
  let totals = report.Sim.Machine.totals in
  let e = Sim.Energy.of_report energy report in
  J.Obj
    ([
      ( "platform",
        J.Obj
          [
            ("name", J.Str platform.Arch.Platform.platform_name);
            ("freq_mhz", J.Int platform.Arch.Platform.freq_mhz);
            ( "accels",
              J.List
                (List.map
                   (fun (a : Arch.Accel.t) -> J.Str a.Arch.Accel.accel_name)
                   platform.Arch.Platform.accels) );
          ] );
      ( "config",
        J.Obj
          [
            ( "memory_strategy",
              J.Str
                (match cfg.Compile.memory_strategy with
                | Dory.Memplan.Reuse -> "reuse"
                | Dory.Memplan.No_reuse -> "no_reuse") );
            ("double_buffer", J.Bool cfg.Compile.double_buffer);
            ("pe_heuristics", J.Bool cfg.Compile.use_pe_heuristics);
            ("dma_heuristic", J.Bool cfg.Compile.use_dma_heuristic);
            ( "autotune_budget",
              match cfg.Compile.autotune_budget with
              | None -> J.Null
              | Some b -> J.Int b );
            ("tuning_trials", J.Int artifact.Compile.tuning_trials);
          ] );
      ( "totals",
        J.Obj
          (counters_json totals
          @ [
              ( "latency_ms",
                J.Float (Compile.latency_ms cfg totals.Sim.Counters.wall) );
              ( "peak_latency_ms",
                J.Float (Compile.latency_ms cfg (Compile.peak_cycles report)) );
            ]) );
      (* Per-solve search totals only: these are identical whether solves
         ran sequentially, on a pool, or were replayed from the cache, so
         the report JSON stays byte-identical across engine settings
         (cache hit/miss counts live in the markdown and the trace). *)
      ( "solver",
        J.Obj
          [
            ("explored", J.Int artifact.Compile.solver.Compile.ss_explored);
            ("infeasible", J.Int artifact.Compile.solver.Compile.ss_infeasible);
            ("pruned", J.Int artifact.Compile.solver.Compile.ss_pruned);
          ] );
      ( "plan",
        let ps = Sim.Plan.stats artifact.Compile.plan in
        J.Obj
          [
            ("accel_steps", J.Int ps.Sim.Plan.accel_steps);
            ("tiles", J.Int ps.Sim.Plan.tiles);
            ("scratch_words", J.Int ps.Sim.Plan.scratch_words);
            ("image_bytes", J.Int ps.Sim.Plan.image_bytes);
          ] );
    ]
    @ demotions_json
    @ [
      ("layers", J.List layers);
      ( "binary",
        J.Obj
          [
            ( "sections",
              J.List
                (List.map
                   (fun (s : Codegen.Size.section) ->
                     J.Obj
                       [
                         ("name", J.Str s.Codegen.Size.section_name);
                         ("bytes", J.Int s.Codegen.Size.bytes);
                       ])
                   artifact.Compile.size.Codegen.Size.sections) );
            ("total_bytes", J.Int artifact.Compile.size.Codegen.Size.total_bytes);
          ] );
      ( "l2",
        J.Obj
          [
            ("static_bytes", J.Int artifact.Compile.l2_static_bytes);
            ("arena_bytes", J.Int artifact.Compile.l2_arena_bytes);
            ( "activation_peak_bytes",
              J.Int artifact.Compile.program.Sim.Program.l2_activation_peak );
          ] );
      ( "energy_uj",
        J.Obj
          [
            ("cpu", J.Float e.Sim.Energy.cpu_uj);
            ("accel", J.Float e.Sim.Energy.accel_uj);
            ("weight_load", J.Float e.Sim.Energy.weight_load_uj);
            ("dma", J.Float e.Sim.Energy.dma_uj);
            ("idle", J.Float e.Sim.Energy.idle_uj);
            ("total", J.Float e.Sim.Energy.total_uj);
          ] );
    ])

let to_json ?energy artifact report = J.to_string (to_json_value ?energy artifact report)

let to_markdown ?(energy = Sim.Energy.diana_defaults) (artifact : Compile.artifact)
    (report : Sim.Machine.report) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let cfg = artifact.Compile.cfg in
  let platform = cfg.Compile.platform in
  add "# HTVM deployment report\n\n";
  add "- platform: **%s** @ %d MHz (accelerators: %s)\n"
    platform.Arch.Platform.platform_name platform.Arch.Platform.freq_mhz
    (match platform.Arch.Platform.accels with
    | [] -> "none"
    | accels ->
        String.concat ", " (List.map (fun a -> a.Arch.Accel.accel_name) accels));
  add "- memory plan: %s; double buffering: %b; heuristics: pe=%b dma=%b\n"
    (match cfg.Compile.memory_strategy with
    | Dory.Memplan.Reuse -> "liveness reuse"
    | Dory.Memplan.No_reuse -> "no reuse (TVM baseline)")
    cfg.Compile.double_buffer cfg.Compile.use_pe_heuristics cfg.Compile.use_dma_heuristic;
  (match cfg.Compile.autotune_budget with
  | None -> add "- autotuning: off (fully ahead-of-time)\n"
  | Some b ->
      add "- autotuning: on (budget %d, %d device trials spent)\n" b
        artifact.Compile.tuning_trials);
  let sv = artifact.Compile.solver in
  add "- tiling search: %d candidates explored (%d infeasible), %d pruned\n"
    sv.Compile.ss_explored sv.Compile.ss_infeasible sv.Compile.ss_pruned;
  if cfg.Compile.solver_cache <> None then
    add "- solver cache: %d hits, %d misses this compile\n" sv.Compile.ss_cache_hits
      sv.Compile.ss_cache_misses;
  let ps = Sim.Plan.stats artifact.Compile.plan in
  add
    "- execution plan: %d accelerator step(s), %d tile instance(s), %d scratch \
     words, %d B weight image\n"
    ps.Sim.Plan.accel_steps ps.Sim.Plan.tiles ps.Sim.Plan.scratch_words
    ps.Sim.Plan.image_bytes;
  (match artifact.Compile.demotions with
  | [] -> ()
  | ds ->
      add "\n## Demotions\n\n";
      List.iter
        (fun (d : Compile.demotion) ->
          add "- %s: **%s -> %s** (%s)\n" d.Compile.d_layer d.Compile.d_from
            d.Compile.d_to
            (Compile.demotion_reason_to_string d.Compile.d_reason))
        ds);
  let full = Compile.full_cycles report and peak = Compile.peak_cycles report in
  add "\n## Latency\n\n";
  add "- full kernel calls: **%.3f ms** (%d cycles)\n" (Compile.latency_ms cfg full) full;
  add "- accelerator peak + CPU: %.3f ms (%d cycles)\n" (Compile.latency_ms cfg peak) peak;
  let t = report.Sim.Machine.totals in
  if
    t.Sim.Counters.faults_detected > 0
    || t.Sim.Counters.faults_silent > 0
    || t.Sim.Counters.retries > 0
    || t.Sim.Counters.retry_cycles > 0
    || t.Sim.Counters.fault_stall > 0
  then
    add
      "- faults: %d detected, %d silent; %d retry(ies) costing %d cycles, %d \
       stall cycles\n"
      t.Sim.Counters.faults_detected t.Sim.Counters.faults_silent
      t.Sim.Counters.retries t.Sim.Counters.retry_cycles
      t.Sim.Counters.fault_stall;
  add "\n## Steps\n\n";
  let rows =
    List.map2
      (fun (li : Compile.layer_info) (name, (c : Sim.Counters.t)) ->
        ignore name;
        [ string_of_int li.Compile.li_index;
          li.Compile.li_target;
          li.Compile.li_desc
          ^ (match li.Compile.li_tile with
            | Some t when li.Compile.li_tiled -> " " ^ Arch.Tile.to_string t
            | _ -> "");
          string_of_int c.Sim.Counters.wall;
          string_of_int (Sim.Counters.peak c);
          string_of_int (c.Sim.Counters.dma_in + c.Sim.Counters.dma_out) ])
      artifact.Compile.layers report.Sim.Machine.per_step
  in
  Buffer.add_string buf
    (Util.Table.render_markdown
       ~header:[ "#"; "target"; "kernel"; "wall"; "accel peak"; "dma" ]
       rows);
  add "\n## Binary size\n\n";
  Buffer.add_string buf
    (Util.Table.render_markdown ~header:[ "section"; "bytes" ]
       (List.map
          (fun (s : Codegen.Size.section) ->
            [ s.Codegen.Size.section_name; string_of_int s.Codegen.Size.bytes ])
          artifact.Compile.size.Codegen.Size.sections));
  add "\ntotal: **%.1f kB**\n" (Codegen.Size.total_kb artifact.Compile.size);
  add "\n## L2 memory\n\n";
  add "- resident weights: %d B\n" artifact.Compile.l2_static_bytes;
  add "- activation arena: %d B (peak use %d B)\n" artifact.Compile.l2_arena_bytes
    artifact.Compile.program.Sim.Program.l2_activation_peak;
  add "\n## Energy (modeled)\n\n";
  add "%s\n"
    (Format.asprintf "%a" Sim.Energy.pp (Sim.Energy.of_report energy report));
  Buffer.contents buf
