(** Human-readable deployment reports.

    Renders everything a deployment engineer asks about an artifact — the
    dispatch decisions, tiling, per-step cycle breakdown, latency,
    binary-size sections, L2 memory plan and estimated energy — as one
    markdown document ([htvmc report] prints it). *)

val to_markdown :
  ?energy:Sim.Energy.params ->
  Compile.artifact ->
  Sim.Machine.report ->
  string
(** Defaults to {!Sim.Energy.diana_defaults} for the energy section. *)

val to_json_value :
  ?energy:Sim.Energy.params ->
  Compile.artifact ->
  Sim.Machine.report ->
  Trace.Json.t
(** The machine-readable report as a JSON document: platform, config,
    totals (cycles per component, DMA bytes, stall, utilization,
    latency), one object per layer, binary-size sections, L2 memory plan
    and modeled energy. The schema is documented in DESIGN.md. *)

val to_json :
  ?energy:Sim.Energy.params ->
  Compile.artifact ->
  Sim.Machine.report ->
  string
(** [to_json_value] rendered as a compact JSON string. *)
