(** Single-layer experiment harness.

    Fig. 4 (tiling-heuristic sweeps) and Fig. 5 (single-layer overhead
    characterization) run individual layers on one accelerator under a
    controlled tiling configuration. This module packages the common
    plumbing: solve the tiling, build the schedule, place the layer's
    buffers in a fresh L2, execute on the simulator, and return both the
    output and the counters. *)

type result = {
  output : Tensor.t;
  counters : Sim.Counters.t;
  solution : Dory.Tiling.solution;
  schedule : Dory.Schedule.t;
}

type failure =
  | Infeasible of Dory.Tiling.infeasible
      (** the tiling solver found no feasible tile *)
  | Diverged of { layer : string }
      (** tiled execution disagreed with {!Ir.Layer.execute} — always a
          simulator or codegen bug *)

val failure_to_string : failure -> string

val run_single_layer :
  ?platform:Arch.Platform.t ->
  accel:Arch.Accel.t ->
  tiling:Dory.Tiling.config ->
  ?input_seed:int ->
  Ir.Layer.t ->
  (result, failure) Stdlib.result
(** Defaults: the full DIANA platform, input seed 7. [Error] propagates
    tiling infeasibility. Functional correctness against
    {!Ir.Layer.execute} is asserted on every run. *)

val peak_throughput : Ir.Layer.t -> result -> float
(** MACs per accelerator-busy cycle (the paper's "peak"). *)

val full_throughput : Ir.Layer.t -> result -> float
(** MACs per wall cycle of the full kernel call. *)
