(** The HTVM compilation driver (paper Fig. 1).

    [compile] takes a quantized graph through the whole hybrid flow:
    graph optimizations, accelerator-aware pattern dispatch (BYOC), DORY
    tiling + schedule generation for matched layers, TVM-style fused
    lowering for the rest, L2 memory planning, C emission and binary-size
    accounting. The result is a simulator-runnable artifact. *)

type config = {
  platform : Arch.Platform.t;
      (** which accelerators exist decides dispatch (Table I's columns) *)
  memory_strategy : Dory.Memplan.strategy;
      (** [Reuse] = HTVM's planner; [No_reuse] = plain-TVM baseline *)
  double_buffer : bool;
  use_pe_heuristics : bool;
  use_dma_heuristic : bool;
  autotune_budget : int option;
      (** when set, TVM-style autotuning refines every heavy CPU kernel
          with up to this many simulated device measurements (paper
          Sec. II-B); [None] = the paper's fully ahead-of-time flow *)
}

val default_config : Arch.Platform.t -> config
(** Reuse planner, double buffering and all tiling heuristics on. *)

val tvm_baseline_config : Arch.Platform.t -> config
(** Plain-TVM deployment model: no buffer reuse (and accelerators are
    whatever the platform carries — pass {!Arch.Diana.cpu_only} for the
    Table I baseline). *)

type layer_info = {
  li_index : int;  (** step index in the program *)
  li_target : string;  (** accelerator name or ["cpu"] *)
  li_desc : string;
  li_tiled : bool;
  li_tile : Arch.Tile.t option;
}

type artifact = {
  cfg : config;
  program : Sim.Program.t;
  size : Codegen.Size.report;
  layers : layer_info list;
  c_source : string;  (** DORY-style C for every offloaded layer *)
  l2_static_bytes : int;  (** weight images resident in L2 *)
  l2_arena_bytes : int;   (** activation arena capacity after statics *)
  tuning_trials : int;    (** device measurements spent by autotuning (0 without) *)
}

val compile : ?trace:Trace.t -> config -> Ir.Graph.t -> (artifact, string) result
(** [Error] carries a diagnosis (e.g. the out-of-memory message that
    reproduces Table I's MobileNet OoM under the TVM baseline). When
    [trace] is given, every compiler phase (simplify, partition, lower
    with per-layer {!Dory.Tiling.solve} events, fuse, autotune, memplan,
    emit) is recorded as a span on the ["compiler"] track. *)

val run :
  ?trace:Trace.t ->
  artifact ->
  inputs:(string * Tensor.t) list ->
  Tensor.t * Sim.Machine.report
(** Execute the artifact on the simulated SoC; [trace] is forwarded to
    {!Sim.Machine.run}. *)

val full_cycles : Sim.Machine.report -> int
(** End-to-end wall cycles — the paper's "HTVM" latency. *)

val peak_cycles : Sim.Machine.report -> int
(** Accelerator busy cycles plus (unavoidable) CPU kernel cycles — the
    paper's "Peak" latency, which excludes DMA and runtime overhead. *)

val latency_ms : config -> int -> float
(** Cycles to milliseconds at the platform clock. *)
