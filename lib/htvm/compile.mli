(** The HTVM compilation driver (paper Fig. 1).

    [compile] takes a quantized graph through the whole hybrid flow:
    graph optimizations, accelerator-aware pattern dispatch (BYOC), DORY
    tiling + schedule generation for matched layers, TVM-style fused
    lowering for the rest, L2 memory planning, C emission and binary-size
    accounting. The result is a simulator-runnable artifact. *)

type config = {
  platform : Arch.Platform.t;
      (** which accelerators exist decides dispatch (Table I's columns) *)
  memory_strategy : Dory.Memplan.strategy;
      (** [Reuse] = HTVM's planner; [No_reuse] = plain-TVM baseline *)
  double_buffer : bool;
  use_pe_heuristics : bool;
  use_dma_heuristic : bool;
  autotune_budget : int option;
      (** when set, TVM-style autotuning refines every heavy CPU kernel
          with up to this many simulated device measurements (paper
          Sec. II-B); [None] = the paper's fully ahead-of-time flow *)
  jobs : int;
      (** worker domains for tiling solves and autotune trials; 1 =
          sequential (no domain is ever spawned). Results are
          bit-identical at every job count. *)
  solver_cache : Dory.Tiling_cache.t option;
      (** when set, tiling solves are memoized across layers and across
          compiles by canonical layer signature; cached compilations stay
          bit-identical to cold ones *)
  exhaustive_tiling : bool;
      (** disable the solver's binary search + branch-and-bound pruning
          and scan every candidate (same chosen tiles; benches use it as
          the pruning baseline) *)
  degraded_targets : string list;
      (** accelerators a health monitor has marked unreliable: segments
          the partitioner assigns to them descend the fallback ladder
          (other healthy accelerators, then the host) instead of being
          lowered there *)
  segment_budget_cycles : int option;
      (** per-segment latency/fault budget: a segment whose untiled
          busy-cycle estimate on an accelerator exceeds it is demoted off
          that accelerator (bounds the work lost to a mid-segment retry
          or abort); [None] = unbounded *)
}

val default_config : Arch.Platform.t -> config
(** Reuse planner, double buffering and all tiling heuristics on;
    [jobs] honours the [HTVM_JOBS] environment variable (default 1), no
    cache, pruned search. *)

val tvm_baseline_config : Arch.Platform.t -> config
(** Plain-TVM deployment model: no buffer reuse (and accelerators are
    whatever the platform carries — pass {!Arch.Diana.cpu_only} for the
    Table I baseline). *)

type layer_info = {
  li_index : int;  (** step index in the program *)
  li_target : string;  (** accelerator name or ["cpu"] *)
  li_desc : string;
  li_tiled : bool;
  li_tile : Arch.Tile.t option;
}

type solver_stats = {
  ss_explored : int;  (** candidate tiles feasibility-tested, all solves *)
  ss_infeasible : int;  (** of those, how many failed *)
  ss_pruned : int;  (** candidates skipped by the branch-and-bound bound *)
  ss_cache_hits : int;  (** this compile's {!Dory.Tiling_cache} hits (0 without) *)
  ss_cache_misses : int;
}
(** Tiling-search totals summed over every offloaded segment. The
    explored / infeasible / pruned totals are per-solve statistics, so
    they are identical whether a solve ran or was replayed from the
    cache; only the hit/miss split depends on caching. *)

type demotion_reason =
  | Degraded_target  (** the target is in [cfg.degraded_targets] *)
  | Infeasible of Dory.Tiling.infeasible
      (** no L1-feasible tile on that accelerator *)
  | Over_budget of { estimated_cycles : int; budget_cycles : int }
      (** untiled busy-cycle estimate exceeds [cfg.segment_budget_cycles] *)

type demotion = {
  d_output : Ir.Graph.id;  (** the segment's output node *)
  d_layer : string;  (** [Ir.Layer.describe] of the segment's layer *)
  d_from : string;  (** target the segment left *)
  d_to : string;  (** next rung tried: an accelerator name or ["cpu"] *)
  d_reason : demotion_reason;
}
(** One hop down the fallback ladder. A segment demoted twice (e.g.
    analog -> digital -> cpu) contributes two records, in ladder order. *)

val demotion_reason_to_string : demotion_reason -> string

type artifact = {
  cfg : config;
  program : Sim.Program.t;
  plan : Sim.Plan.t;
      (** compiled execution plan for [program], built eagerly at compile
          time; {!run} uses it by default ([use_plan]) *)
  size : Codegen.Size.report;
  layers : layer_info list;
  c_source : string;  (** DORY-style C for every offloaded layer *)
  l2_static_bytes : int;  (** weight images resident in L2 *)
  l2_arena_bytes : int;   (** activation arena capacity after statics *)
  tuning_trials : int;    (** device measurements spent by autotuning (0 without) *)
  solver : solver_stats;
  demotions : demotion list;
      (** every fallback-ladder hop taken, in segment order (empty when
          all segments lowered on their first-choice target) *)
}

(** Typed compilation failures. The conformance checker (lib/check) and
    the test suites match on the variant — never on message substrings —
    to tell a legitimate resource diagnosis from a compiler bug. *)
type error =
  | Out_of_memory of {
      oom_region : string;
          (** which L2 budget overflowed: ["L2 static"] (weights + code
              leave no room for activations) or ["L2 arena"] (the
              activation planner ran out) *)
      oom_needed_bytes : int;   (** bytes the failing allocation required *)
      oom_capacity_bytes : int; (** bytes that were available *)
      oom_detail : string;      (** full human-readable diagnosis *)
    }  (** A resource diagnosis — the expected outcome on undersized
          memories (Table I's MobileNet OoM under the TVM baseline). *)
  | No_feasible_tile of Dory.Tiling.infeasible
      (** An offloaded layer had no L1-feasible tile on any rung of the
          fallback ladder and no host fallback was possible. *)
  | Empty_graph  (** the graph has no operator applications *)
  | Internal of string
      (** A broken compiler invariant — always a bug, never a legitimate
          rejection. *)

val error_to_string : error -> string
(** Human-readable rendering (what [htvmc] prints). *)

val pp_error : Format.formatter -> error -> unit

val is_resource_error : error -> bool
(** [true] exactly for {!Out_of_memory} and {!No_feasible_tile}: the
    rejections a correct compiler is allowed to produce on valid input
    when the platform is too small. *)

val artifact_digest : artifact -> string
(** Hex digest of the artifact's canonical serialized form (everything
    except [cfg] and the derived execution plan). Compiling the same
    graph under the same config twice — cold, warm from the persistent
    store, or on another machine — must produce the same digest; the CI
    smoke diffs it across a cold and a warm [htvmc compile]. *)

val artifact_store_key : config -> Ir.Graph.t -> string
(** The artifact-tier store key: an injective encoding of the code
    version, every artifact-relevant config field (not [jobs] or
    [solver_cache] — results are deterministic in both) and the graph's
    content digest. Exposed for tests that need to corrupt or inspect a
    specific store entry. *)

val compile :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?store:Store.t ->
  config ->
  Ir.Graph.t ->
  (artifact, error) result
(** [Error] carries a typed diagnosis (e.g. the out-of-memory record that
    reproduces Table I's MobileNet OoM under the TVM baseline). When
    [trace] is given, every compiler phase (simplify, partition, lower
    with per-layer ["tiling.solve"] events, fuse, autotune, memplan,
    plan, emit) is recorded as a span on the ["compiler"] track.

    When [metrics] is given, the same phases register
    [htvm_wall_compile_phase_seconds{phase=...}] gauges on the wall
    track, and deterministic solver totals (candidates explored /
    infeasible / pruned, tiling-cache hits/misses, demotions, tuning
    trials) register as counters on the cycles track. Registration is
    strict, so pass a registry that has not seen a compile yet (one
    registry per compile; merge snapshots to aggregate).

    With [cfg.jobs > 1] the per-segment tiling solves and per-kernel
    autotune trials run on a domain pool; trace events are replayed in
    segment order from the calling domain, so the artifact and the trace
    are bit-identical (modulo timestamps) to a [jobs = 1] run.

    When [store] is given, the compile reads and writes the persistent
    content-addressed cache. An artifact-tier hit skips every phase and
    replays the stored artifact (plan rebuilt, solver counters
    registered from the stored stats); otherwise each tiling solve
    consults the layer tier before burning search work, and the
    finished artifact is written back. Warm compiles are byte-identical
    to cold ones: same {!artifact_digest}, same solver stats. Corrupt,
    truncated or version-skewed entries are rejected (counted on the
    store handle), recomputed and overwritten — never served. *)

val run :
  ?trace:Trace.t ->
  ?faults:Fault.Session.t ->
  ?retry_budget:int ->
  ?use_plan:bool ->
  artifact ->
  inputs:(string * Tensor.t) list ->
  Tensor.t * Sim.Machine.report
(** Execute the artifact on the simulated SoC; [trace], [faults] and
    [retry_budget] are forwarded to {!Sim.Machine.run} (omitting
    [faults], or passing a session over the empty plan, changes
    nothing). [use_plan] (default [true]) executes through the artifact's
    compiled {!Sim.Plan} fast path — byte-identical outputs, counters and
    traces; pass [false] to force the slow interpretive oracle. A fault
    session always runs the slow path regardless of [use_plan].
    @raise Fault.Session.Unrecovered when an injected fault exhausts the
    retry budget. *)

val full_cycles : Sim.Machine.report -> int
(** End-to-end wall cycles — the paper's "HTVM" latency. *)

val peak_cycles : Sim.Machine.report -> int
(** Accelerator busy cycles plus (unavoidable) CPU kernel cycles — the
    paper's "Peak" latency, which excludes DMA and runtime overhead. *)

val latency_ms : config -> int -> float
(** Cycles to milliseconds at the platform clock. *)
