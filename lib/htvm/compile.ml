module G = Ir.Graph
module P = Sim.Program
module L = Ir.Layer

type config = {
  platform : Arch.Platform.t;
  memory_strategy : Dory.Memplan.strategy;
  double_buffer : bool;
  use_pe_heuristics : bool;
  use_dma_heuristic : bool;
  autotune_budget : int option;
  jobs : int;
  solver_cache : Dory.Tiling_cache.t option;
  exhaustive_tiling : bool;
  degraded_targets : string list;
  segment_budget_cycles : int option;
}

let default_config platform =
  {
    platform;
    memory_strategy = Dory.Memplan.Reuse;
    double_buffer = true;
    use_pe_heuristics = true;
    use_dma_heuristic = true;
    autotune_budget = None;
    jobs = Util.Pool.jobs_from_env ();
    solver_cache = None;
    exhaustive_tiling = false;
    degraded_targets = [];
    segment_budget_cycles = None;
  }

let tvm_baseline_config platform =
  { (default_config platform) with memory_strategy = Dory.Memplan.No_reuse }

type layer_info = {
  li_index : int;
  li_target : string;
  li_desc : string;
  li_tiled : bool;
  li_tile : Arch.Tile.t option;
}

type solver_stats = {
  ss_explored : int;
  ss_infeasible : int;
  ss_pruned : int;
  ss_cache_hits : int;
  ss_cache_misses : int;
}

type demotion_reason =
  | Degraded_target
  | Infeasible of Dory.Tiling.infeasible
  | Over_budget of { estimated_cycles : int; budget_cycles : int }

type demotion = {
  d_output : G.id;
  d_layer : string;
  d_from : string;
  d_to : string;
  d_reason : demotion_reason;
}

let demotion_reason_to_string = function
  | Degraded_target -> "target marked degraded"
  | Infeasible inf -> Dory.Tiling.infeasible_to_string inf
  | Over_budget { estimated_cycles; budget_cycles } ->
      Printf.sprintf "estimated %d cycles exceeds segment budget %d"
        estimated_cycles budget_cycles

type artifact = {
  cfg : config;
  program : Sim.Program.t;
  plan : Sim.Plan.t;
  size : Codegen.Size.report;
  layers : layer_info list;
  c_source : string;
  l2_static_bytes : int;
  l2_arena_bytes : int;
  tuning_trials : int;
  solver : solver_stats;
  demotions : demotion list;
}

type error =
  | Out_of_memory of {
      oom_region : string;
      oom_needed_bytes : int;
      oom_capacity_bytes : int;
      oom_detail : string;
    }
  | No_feasible_tile of Dory.Tiling.infeasible
  | Empty_graph
  | Internal of string

let error_to_string = function
  | Out_of_memory { oom_detail; _ } -> oom_detail
  | No_feasible_tile inf -> Dory.Tiling.infeasible_to_string inf
  | Empty_graph -> "nothing to execute: graph has no operator applications"
  | Internal msg -> "internal compiler error: " ^ msg

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let is_resource_error = function
  | Out_of_memory _ | No_feasible_tile _ -> true
  | Empty_graph | Internal _ -> false

(* ---- persistent store integration ----

   Two tiers. The layer tier maps a tiling-problem signature to its
   serialized [Dory.Tiling.outcome] — stats included, so a warm solve
   replays the exact trace payload and solver totals of a cold one. The
   artifact tier maps a graph+config+code-version digest to the full
   compiled artifact (minus [cfg], supplied by the caller, and minus the
   execution plan, a derived accelerator-closure structure rebuilt on
   load with [Sim.Plan.build]).

   Serialization is [Marshal] with [No_sharing]: every value stored is
   closure-free pure data, and the structural (sharing-free) encoding
   makes re-marshalling a round-tripped value reproduce the stored bytes
   exactly — which is what makes [artifact_digest] of a warm artifact
   byte-identical to the cold one. [code_version] is folded into every
   key, so a format change after an upgrade is a clean miss, never a
   misread; unmarshalling only ever runs on digest-verified payloads and
   is still guarded, with a decode failure rejecting the entry. *)

let code_version = "htvm-code-v1"

let layer_store_key signature =
  Util.Key.encode [ code_version; "layer"; signature ]

let bytes_of_outcome (o : Dory.Tiling.outcome) =
  Marshal.to_string o [ Marshal.No_sharing ]

let outcome_of_bytes s =
  match (Marshal.from_string s 0 : Dory.Tiling.outcome) with
  | o -> Some o
  | exception _ -> None

(* Verified store lookup of one layer outcome: a digest-valid entry whose
   payload still fails to unmarshal is invalidated so it cannot be served
   again. *)
let store_find_outcome st key =
  match Store.find st Store.Layer ~key with
  | None -> None
  | Some payload -> (
      match outcome_of_bytes payload with
      | Some o -> Some o
      | None ->
          Store.invalidate st Store.Layer ~key;
          None)

(* Every config field that can influence the compiled artifact. [jobs]
   and [solver_cache] are excluded on purpose: compilation is
   deterministic in both (enforced by the test suite), so they must not
   fragment the key space. The platform is identified by name — platform
   definitions live in the [Arch] registry, so the name pins the
   hardware model. *)
let config_fingerprint cfg =
  Util.Key.encode
    [
      cfg.platform.Arch.Platform.platform_name;
      (match cfg.memory_strategy with
      | Dory.Memplan.Reuse -> "reuse"
      | Dory.Memplan.No_reuse -> "no-reuse");
      string_of_bool cfg.double_buffer;
      string_of_bool cfg.use_pe_heuristics;
      string_of_bool cfg.use_dma_heuristic;
      (match cfg.autotune_budget with None -> "-" | Some n -> string_of_int n);
      string_of_bool cfg.exhaustive_tiling;
      Util.Key.encode cfg.degraded_targets;
      (match cfg.segment_budget_cycles with
      | None -> "-"
      | Some n -> string_of_int n);
    ]

let graph_digest graph =
  Digest.to_hex (Digest.string (Marshal.to_string graph [ Marshal.No_sharing ]))

let artifact_store_key cfg graph =
  Util.Key.encode
    [ code_version; "artifact"; config_fingerprint cfg; graph_digest graph ]

(* The persisted subset of [artifact]. *)
type stored_artifact = {
  st_program : Sim.Program.t;
  st_size : Codegen.Size.report;
  st_layers : layer_info list;
  st_c_source : string;
  st_l2_static_bytes : int;
  st_l2_arena_bytes : int;
  st_tuning_trials : int;
  st_solver : solver_stats;
  st_demotions : demotion list;
}

let artifact_payload a =
  Marshal.to_string
    {
      st_program = a.program;
      st_size = a.size;
      st_layers = a.layers;
      st_c_source = a.c_source;
      st_l2_static_bytes = a.l2_static_bytes;
      st_l2_arena_bytes = a.l2_arena_bytes;
      st_tuning_trials = a.tuning_trials;
      st_solver = a.solver;
      st_demotions = a.demotions;
    }
    [ Marshal.No_sharing ]

let artifact_digest a = Digest.to_hex (Digest.string (artifact_payload a))

let stored_of_bytes s =
  match (Marshal.from_string s 0 : stored_artifact) with
  | st -> Some st
  | exception _ -> None

let artifact_of_stored cfg st =
  {
    cfg;
    program = st.st_program;
    plan = Sim.Plan.build ~platform:cfg.platform st.st_program;
    size = st.st_size;
    layers = st.st_layers;
    c_source = st.st_c_source;
    l2_static_bytes = st.st_l2_static_bytes;
    l2_arena_bytes = st.st_l2_arena_bytes;
    tuning_trials = st.st_tuning_trials;
    solver = st.st_solver;
    demotions = st.st_demotions;
  }

(* One lowered execution unit, before buffer assignment. *)
type lowered =
  | LAccel of {
      accel : Arch.Accel.t;
      layer : L.t;
      schedule : Dory.Schedule.t;
      in_nodes : G.id list;
      out_node : G.id;
    }
  | LCpu of { kernel : Codegen.Fuse.kernel; in_nodes : G.id list; out_node : G.id }

let lowered_out = function
  | LAccel { out_node; _ } | LCpu { out_node; _ } -> out_node

let lowered_ins = function
  | LAccel { in_nodes; _ } | LCpu { in_nodes; _ } -> in_nodes

let targets_of platform =
  let n = List.length platform.Arch.Platform.accels in
  List.mapi
    (fun i (a : Arch.Accel.t) ->
      (* Untiled busy-cycle estimate: enough to rank accelerators per
         layer when several accept it (paper Sec. III-A). *)
      let estimate layer =
        let full = Arch.Tile.full layer in
        a.Arch.Accel.setup_cycles
        + a.Arch.Accel.compute_cycles layer full
        + a.Arch.Accel.weight_load_cycles layer full
      in
      {
        Byoc.Partition.name = a.Arch.Accel.accel_name;
        patterns = Byoc.Library.all;
        accept = a.Arch.Accel.supports;
        priority = n - i;
        estimate = Some estimate;
      })
    platform.Arch.Platform.accels

let region_nodes g output =
  match
    List.find_map (fun p -> Byoc.Pattern.matches g p ~at:output) Byoc.Library.all
  with
  | Some m -> m.Byoc.Pattern.matched
  | None -> [ output ]

let external_cpu_inputs g kernel_nodes =
  List.concat_map
    (fun id ->
      match G.node g id with
      | G.App { args; _ } ->
          List.filter
            (fun a ->
              (not (List.mem a kernel_nodes))
              && match G.node g a with G.Const _ -> false | _ -> true)
            args
      | G.Input _ | G.Const _ -> [])
    kernel_nodes
  |> List.sort_uniq compare

(* A fused CPU kernel is autotune-eligible when its anchor is a heavy
   conv/dense with constant weights: the tuner needs the layer geometry. *)
let tuneable_layer_of g (tys : Ir.Infer.ty array) (k : Codegen.Fuse.kernel) =
  match k.Codegen.Fuse.nodes with
  | [] -> None
  | anchor :: _ -> (
      match G.node g anchor with
      | G.App { op = Ir.Op.Conv2d p; args = [ data; w ] } -> (
          match G.node g w with
          | G.Const wt ->
              Some
                {
                  L.kind = L.Conv p;
                  fused_pool = None;
                  weights = Some wt;
                  bias = None;
                  shift = None;
                  relu = false;
                  in_shape = tys.(data).Ir.Infer.shape;
                  in2_shape = None;
                  out_shape = tys.(anchor).Ir.Infer.shape;
                  in_dtype = tys.(data).Ir.Infer.dtype;
                  out_dtype = Tensor.Dtype.I32;
                }
          | G.Input _ | G.App _ -> None)
      | G.App { op = Ir.Op.Dense; args = [ data; w ] } -> (
          match G.node g w with
          | G.Const wt ->
              Some
                {
                  L.kind = L.Dense;
                  fused_pool = None;
                  weights = Some wt;
                  bias = None;
                  shift = None;
                  relu = false;
                  in_shape = tys.(data).Ir.Infer.shape;
                  in2_shape = None;
                  out_shape = tys.(anchor).Ir.Infer.shape;
                  in_dtype = tys.(data).Ir.Infer.dtype;
                  out_dtype = Tensor.Dtype.I32;
                }
          | G.Input _ | G.App _ -> None)
      | G.App _ | G.Input _ | G.Const _ -> None)

(* TVM-style autotuning of the host kernels: measure schedule variants on
   the device model and scale each kernel's cycle estimate by the best
   found variant. The accelerated path is untouched — HTVM's argument is
   precisely that it needs none of this. *)
(* Each kernel tunes independently (seeded by its name, so results do not
   depend on scheduling) — fanned out across the pool. *)
let autotune_kernels pool cfg g tys kernels =
  match cfg.autotune_budget with
  | None -> (kernels, 0)
  | Some budget ->
      let tuned =
        Util.Pool.map pool
          (fun (k : Codegen.Fuse.kernel) ->
            match tuneable_layer_of g tys k with
            | None -> (k, 0)
            | Some layer ->
                let r =
                  Tune.Search.tune
                    ~seed:(Hashtbl.hash k.Codegen.Fuse.kernel_name)
                    ~budget ~device:Tune.Device.xpulpv2 layer
                in
                let factor =
                  float_of_int r.Tune.Search.best_cycles
                  /. float_of_int (max 1 r.Tune.Search.default_cycles)
                in
                ( {
                    k with
                    Codegen.Fuse.cycles =
                      max 1
                        (int_of_float
                           (Float.round (float_of_int k.Codegen.Fuse.cycles *. factor)));
                  },
                  r.Tune.Search.trials ))
          kernels
      in
      (List.map fst tuned, List.fold_left (fun acc (_, t) -> acc + t) 0 tuned)

let cpu_const_bytes g kernels =
  let ids =
    List.concat_map
      (fun (k : Codegen.Fuse.kernel) ->
        List.concat_map
          (fun id ->
            match G.node g id with G.App { args; _ } -> args | _ -> [])
          k.Codegen.Fuse.nodes)
      kernels
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc id ->
      match G.node g id with G.Const t -> acc + Tensor.packed_bytes t | _ -> acc)
    0 ids

let compile_cold ?trace ?metrics ?store cfg graph =
  let ( let* ) = Result.bind in
  Util.Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  (* Wall-track phase gauges ride along with the trace spans. They are
     registered on first entry into each phase, so a registry must be
     fresh per compile (duplicate registration raises by design). *)
  let phase ?args name f =
    let finish =
      match metrics with
      | None -> fun () -> ()
      | Some reg ->
          let g =
            Metrics.gauge reg ~track:Metrics.Wall
              ~labels:[ ("phase", name) ]
              ~help:"Host seconds spent in one compile phase."
              "htvm_wall_compile_phase_seconds"
          in
          let t0 = Sys.time () in
          fun () -> Metrics.set g (Sys.time () -. t0)
    in
    let r = Trace.span trace ?args name f in
    finish ();
    r
  in
  let g = phase "simplify" (fun () -> Ir.Rewrite.simplify graph) in
  let platform = cfg.platform in
  let plan =
    phase "partition"
      ~args:[ ("platform", Trace.Json.Str platform.Arch.Platform.platform_name) ]
      (fun () -> Byoc.Partition.run g ~targets:(targets_of platform))
  in
  let tys = plan.Byoc.Partition.tys in
  let tiling_cfg =
    {
      Dory.Tiling.alpha = 1.0;
      use_pe_heuristics = cfg.use_pe_heuristics;
      use_dma_heuristic = cfg.use_dma_heuristic;
      double_buffer = cfg.double_buffer;
      l1_budget = platform.Arch.Platform.l1.Arch.Memory.size_bytes;
    }
  in
  (* Lower offloaded segments; segments their chosen target cannot carry
     descend a fallback ladder (every other healthy accelerator accepting
     the layer, in platform order, then the host path), each hop recorded
     as a structured demotion. The primary solves are pure, so they fan
     out across the pool (deduplicated through the cache first, when one
     is configured — lookups and insertions stay on this domain). The
     sequential pass below then consumes the outcomes in segment order,
     replaying each ["tiling.solve"] trace event from this domain, so
     parallel and cached runs stay bit-identical to sequential cold
     ones. *)
  let host_pool = ref [] in
  let accel_units = ref [] in
  let cache_hits = ref 0 in
  let cache_misses = ref 0 in
  let seg_outcomes = ref [] in
  let demotions = ref [] in
  phase "lower" (fun () ->
      let estimate (a : Arch.Accel.t) layer =
        let full = Arch.Tile.full layer in
        a.Arch.Accel.setup_cycles
        + a.Arch.Accel.compute_cycles layer full
        + a.Arch.Accel.weight_load_cycles layer full
      in
      (* The pre-solve rung checks: why a segment cannot stay on [a]
         before any tiling is attempted. [None] = the accelerator may
         try. Used both to build the pool's work list and to consume it,
         so the two passes agree segment by segment. *)
      let rung_block (a : Arch.Accel.t) layer =
        if List.mem a.Arch.Accel.accel_name cfg.degraded_targets then
          Some Degraded_target
        else
          match cfg.segment_budget_cycles with
          | Some budget when estimate a layer > budget ->
              Some
                (Over_budget
                   { estimated_cycles = estimate a layer; budget_cycles = budget })
          | _ -> None
      in
      let offloads =
        List.filter_map
          (function
            | Byoc.Partition.Offload { target; layer; _ } ->
                let accel = Arch.Platform.find_accel platform target in
                if rung_block accel layer = None then Some (accel, layer)
                else None
            | Byoc.Partition.Host _ -> None)
          plan.Byoc.Partition.segments
      in
      let solve (accel, layer) =
        Dory.Tiling.solve_stats ~exhaustive:cfg.exhaustive_tiling tiling_cfg accel
          layer
      in
      let solved =
        match cfg.solver_cache with
        | None when store = None -> Util.Pool.map pool solve offloads
        | None ->
            (* Store, no in-process cache: each task consults the layer
               tier individually — duplicates included — so the solver
               totals folded from [seg_outcomes] match an uncached cold
               compile exactly (a store hit replays the stored stats). *)
            let st = Option.get store in
            let looked =
              List.map
                (fun ((accel, layer) as task) ->
                  let skey =
                    layer_store_key
                      (Dory.Tiling_cache.signature tiling_cfg
                         ~accel:accel.Arch.Accel.accel_name layer)
                  in
                  (skey, store_find_outcome st skey, task))
                offloads
            in
            let fresh =
              List.filter_map
                (function k, None, task -> Some (k, task) | _ -> None)
                looked
            in
            let solved_fresh =
              Util.Pool.map pool (fun (_, task) -> solve task) fresh
            in
            List.iter2
              (fun (k, _) o -> Store.put st Store.Layer ~key:k (bytes_of_outcome o))
              fresh solved_fresh;
            let remaining = ref solved_fresh in
            List.map
              (fun (_, found, _) ->
                match found with
                | Some o -> o
                | None -> (
                    match !remaining with
                    | o :: rest ->
                        remaining := rest;
                        o
                    | [] -> assert false))
              looked
        | Some cache ->
            (* Deterministic accounting regardless of pool scheduling: a
               segment counts as a hit when its signature is already
               cached or an earlier segment of this compile is about to
               solve it; only distinct new signatures reach the pool. *)
            let keyed =
              List.map
                (fun ((accel, layer) as task) ->
                  ( Dory.Tiling_cache.signature tiling_cfg
                      ~accel:accel.Arch.Accel.accel_name layer,
                    task ))
                offloads
            in
            let pending = Hashtbl.create 16 in
            let fresh =
              List.filter_map
                (fun (key, task) ->
                  let hit =
                    Dory.Tiling_cache.find cache key <> None
                    || Hashtbl.mem pending key
                  in
                  Dory.Tiling_cache.note cache ~hit;
                  if hit then begin
                    incr cache_hits;
                    None
                  end
                  else begin
                    incr cache_misses;
                    Hashtbl.add pending key ();
                    Some (key, task)
                  end)
                keyed
            in
            (* In-process misses still get one shot at the layer tier of
               the persistent store before burning solver work; they keep
               counting as in-process misses either way, so the solver
               stats stay byte-identical between cold and warm runs. *)
            let from_store, to_solve =
              match store with
              | None -> ([], fresh)
              | Some st ->
                  List.partition_map
                    (fun (key, task) ->
                      match store_find_outcome st (layer_store_key key) with
                      | Some o -> Either.Left (key, o)
                      | None -> Either.Right (key, task))
                    fresh
            in
            List.iter
              (fun (key, o) -> Dory.Tiling_cache.add cache key o)
              from_store;
            let solved_fresh =
              Util.Pool.map pool (fun (_, task) -> solve task) to_solve
            in
            List.iter2
              (fun (key, _) outcome ->
                Dory.Tiling_cache.add cache key outcome;
                match store with
                | Some st ->
                    Store.put st Store.Layer ~key:(layer_store_key key)
                      (bytes_of_outcome outcome)
                | None -> ())
              to_solve solved_fresh;
            List.map
              (fun (key, _) ->
                match Dory.Tiling_cache.find cache key with
                | Some o -> o
                | None -> assert false)
              keyed
      in
      let next = ref solved in
      let take () =
        match !next with
        | o :: rest ->
            next := rest;
            o
        | [] -> assert false
      in
      List.iter
        (fun seg ->
          match seg with
          | Byoc.Partition.Host { id } -> host_pool := id :: !host_pool
          | Byoc.Partition.Offload { target; layer; inputs; output } ->
              let primary = Arch.Platform.find_accel platform target in
              let accept (a : Arch.Accel.t) sol =
                let schedule =
                  Dory.Schedule.build layer ~accel_name:a.Arch.Accel.accel_name
                    ~tile:sol.Dory.Tiling.tile ~double_buffer:cfg.double_buffer
                in
                accel_units :=
                  LAccel
                    { accel = a; layer; schedule; in_nodes = inputs; out_node = output }
                  :: !accel_units
              in
              (* The remaining rungs of the ladder after the partition's
                 choice: healthy accelerators accepting the layer, in
                 platform order, then the host. *)
              let alternates =
                List.filter
                  (fun (a : Arch.Accel.t) ->
                    a.Arch.Accel.accel_name <> target
                    && a.Arch.Accel.supports layer
                    && rung_block a layer = None)
                  platform.Arch.Platform.accels
              in
              let next_name = function
                | (a : Arch.Accel.t) :: _ -> a.Arch.Accel.accel_name
                | [] -> "cpu"
              in
              let demote ~from ~to_ reason =
                demotions :=
                  {
                    d_output = output;
                    d_layer = L.describe layer;
                    d_from = from;
                    d_to = to_;
                    d_reason = reason;
                  }
                  :: !demotions
              in
              let rec descend = function
                | [] -> host_pool := region_nodes g output @ !host_pool
                | (a : Arch.Accel.t) :: rest -> (
                    let outcome =
                      Dory.Tiling.solve_stats ~exhaustive:cfg.exhaustive_tiling
                        tiling_cfg a layer
                    in
                    Dory.Tiling.trace_solve_event trace a layer outcome;
                    seg_outcomes := outcome :: !seg_outcomes;
                    match outcome.Dory.Tiling.result with
                    | Ok sol -> accept a sol
                    | Error inf ->
                        demote ~from:a.Arch.Accel.accel_name
                          ~to_:(next_name rest) (Infeasible inf);
                        descend rest)
              in
              (match rung_block primary layer with
              | Some reason ->
                  demote ~from:target ~to_:(next_name alternates) reason;
                  descend alternates
              | None -> (
                  let outcome = take () in
                  Dory.Tiling.trace_solve_event trace primary layer outcome;
                  seg_outcomes := outcome :: !seg_outcomes;
                  match outcome.Dory.Tiling.result with
                  | Ok sol -> accept primary sol
                  | Error inf ->
                      demote ~from:target ~to_:(next_name alternates)
                        (Infeasible inf);
                      descend alternates)))
        plan.Byoc.Partition.segments);
  let solver =
    List.fold_left
      (fun acc (o : Dory.Tiling.outcome) ->
        let s = o.Dory.Tiling.stats in
        {
          acc with
          ss_explored = acc.ss_explored + s.Dory.Tiling.explored;
          ss_infeasible =
            acc.ss_infeasible + (s.Dory.Tiling.explored - s.Dory.Tiling.feasible);
          ss_pruned = acc.ss_pruned + s.Dory.Tiling.pruned;
        })
      {
        ss_explored = 0;
        ss_infeasible = 0;
        ss_pruned = 0;
        ss_cache_hits = !cache_hits;
        ss_cache_misses = !cache_misses;
      }
      !seg_outcomes
  in
  (match cfg.solver_cache with
  | Some cache ->
      Trace.event trace ~cat:"dory"
        ~args:
          [
            ("hits", Trace.Json.Int !cache_hits);
            ("misses", Trace.Json.Int !cache_misses);
            ("entries", Trace.Json.Int (Dory.Tiling_cache.length cache));
          ]
        "tiling_cache.stats"
  | None -> ());
  (* Solver totals are a pure function of config + graph (parallel solves
     replay in segment order), so they live on the deterministic track. *)
  (match metrics with
  | None -> ()
  | Some reg ->
      let c name help v = Metrics.inc (Metrics.counter reg ~help name) v in
      c "htvm_compile_solver_explored_total" "Tiling candidates explored."
        solver.ss_explored;
      c "htvm_compile_solver_infeasible_total"
        "Tiling candidates rejected as infeasible." solver.ss_infeasible;
      c "htvm_compile_solver_pruned_total"
        "Tiling candidates pruned before full evaluation." solver.ss_pruned;
      c "htvm_compile_cache_hits_total" "Tiling-cache hits this compile."
        solver.ss_cache_hits;
      c "htvm_compile_cache_misses_total" "Tiling-cache misses this compile."
        solver.ss_cache_misses);
  let kernels =
    phase "fuse" (fun () ->
        Codegen.Fuse.kernels ~cpu:platform.Arch.Platform.cpu
          ~size:platform.Arch.Platform.size_model g tys ~host_nodes:!host_pool)
  in
  let kernels, tuning_trials =
    phase "autotune" (fun () -> autotune_kernels pool cfg g tys kernels)
  in
  if tuning_trials > 0 then
    Trace.event trace ~cat:"tune"
      ~args:[ ("trials", Trace.Json.Int tuning_trials) ]
      "autotune.trials";
  let cpu_units =
    List.map
      (fun (k : Codegen.Fuse.kernel) ->
        let nodes = k.Codegen.Fuse.nodes in
        let out_node = List.nth nodes (List.length nodes - 1) in
        LCpu { kernel = k; in_nodes = external_cpu_inputs g nodes; out_node })
      kernels
  in
  let units =
    List.sort (fun a b -> compare (lowered_out a) (lowered_out b))
      (!accel_units @ cpu_units)
  in
  let* () =
    match units with
    | [] -> Error Empty_graph
    | _ ->
        if lowered_out (List.nth units (List.length units - 1)) <> G.output g then
          Error (Internal "graph output is not produced by any step")
        else Ok ()
  in
  (* Buffers: one per graph input and one per unit output. *)
  let buf_of_node = Hashtbl.create 16 in
  let buffers = ref [] in
  let fresh_buffer node =
    let id = Hashtbl.length buf_of_node in
    let ty = tys.(node) in
    Hashtbl.add buf_of_node node id;
    buffers :=
      {
        P.buf_id = id;
        b_dtype = ty.Ir.Infer.dtype;
        b_shape = ty.Ir.Infer.shape;
        l2_offset = 0 (* placed below *);
      }
      :: !buffers;
    id
  in
  let input_buffers =
    List.map (fun (id, name, _, _) -> (name, fresh_buffer id)) (G.inputs g)
  in
  List.iter (fun u -> ignore (fresh_buffer (lowered_out u))) units;
  let* () =
    (* Every step input must resolve to a buffer (i.e. not a constant). *)
    let ok =
      List.for_all
        (fun u -> List.for_all (fun n -> Hashtbl.mem buf_of_node n) (lowered_ins u))
        units
    in
    if ok then Ok () else Error (Internal "a kernel input is not a planned buffer")
  in
  (* Static L2 region: accelerator weight and bias images. *)
  let images = ref [] in
  let cursor = ref 0 in
  let place tensor =
    let off = !cursor in
    images := (off, tensor) :: !images;
    cursor := Util.Ints.round_up (off + Tensor.sim_bytes tensor) 4;
    off
  in
  let steps =
    List.map
      (fun u ->
        match u with
        | LAccel { layer; schedule; in_nodes; out_node; accel = _ } ->
            let weights_offset =
              match layer.L.weights with Some w -> place w | None -> -1
            in
            let bias_offset = match layer.L.bias with Some b -> place b | None -> -1 in
            P.Accel
              {
                accel_name = schedule.Dory.Schedule.accel_name;
                schedule;
                ins = List.map (Hashtbl.find buf_of_node) in_nodes;
                out = Hashtbl.find buf_of_node out_node;
                weights_offset;
                bias_offset;
              }
        | LCpu { kernel; in_nodes; out_node } ->
            P.Cpu
              {
                kernel_name = kernel.Codegen.Fuse.kernel_name;
                nodes = kernel.Codegen.Fuse.nodes;
                ins = List.map (fun n -> (n, Hashtbl.find buf_of_node n)) in_nodes;
                out = Hashtbl.find buf_of_node out_node;
                cycles = kernel.Codegen.Fuse.cycles;
              }
      )
      units
  in
  let l2_static_bytes = !cursor in
  (* Binary size accounting. *)
  let accel_layer_list =
    List.filter_map
      (function
        | LAccel { layer; schedule; _ } ->
            Some
              ( layer,
                schedule.Dory.Schedule.accel_name,
                Dory.Schedule.is_tiled schedule )
        | LCpu _ -> None)
      units
  in
  let size =
    Codegen.Size.report ~size_model:platform.Arch.Platform.size_model
      ~cpu_kernels:kernels ~accel_layers:accel_layer_list
      ~cpu_const_bytes:(cpu_const_bytes g kernels)
  in
  (* Activation arena: what is left of L2 after the resident weight images
     and the binary's code + CPU constant sections. *)
  let l2_size = platform.Arch.Platform.l2.Arch.Memory.size_bytes in
  let code_bytes =
    List.fold_left
      (fun acc (s : Codegen.Size.section) ->
        if s.Codegen.Size.section_name = "accelerator constants" then acc
        else acc + s.Codegen.Size.bytes)
      0 size.Codegen.Size.sections
  in
  let arena_capacity = l2_size - l2_static_bytes - code_bytes in
  let* () =
    if arena_capacity <= 0 then
      Error
        (Out_of_memory
           {
             oom_region = "L2 static";
             oom_needed_bytes = l2_static_bytes + code_bytes;
             oom_capacity_bytes = l2_size;
             oom_detail =
               Printf.sprintf
                 "out of memory: weights (%d B) and code (%d B) leave no L2 for \
                  activations"
                 l2_static_bytes code_bytes;
           })
    else Ok ()
  in
  (* Liveness over step indices: inputs are born before step 0; the network
     output stays live to the end. One indexed pass over the units fills
     both the birth and the last-use table. *)
  let n_steps = List.length steps in
  let death = Hashtbl.create 16 in
  let birth_of = Hashtbl.create 16 in
  let note_use buf step_idx =
    let cur = try Hashtbl.find death buf with Not_found -> -1 in
    Hashtbl.replace death buf (max cur step_idx)
  in
  List.iter (fun (_, id) -> Hashtbl.replace birth_of id 0) input_buffers;
  List.iteri
    (fun i u ->
      Hashtbl.replace birth_of (Hashtbl.find buf_of_node (lowered_out u)) (i + 1);
      List.iter (fun n -> note_use (Hashtbl.find buf_of_node n) (i + 1)) (lowered_ins u))
    units;
  let requests =
    List.map
      (fun (b : P.buffer) ->
        let birth =
          match Hashtbl.find_opt birth_of b.P.buf_id with Some i -> i | None -> 0
        in
        let death =
          let d = try Hashtbl.find death b.P.buf_id with Not_found -> birth in
          if
            b.P.buf_id = Hashtbl.find buf_of_node (G.output g)
          then n_steps + 1
          else max d birth
        in
        {
          Dory.Memplan.buffer_id = b.P.buf_id;
          bytes = P.buffer_bytes b;
          birth;
          death;
        })
      (List.rev !buffers)
  in
  let* placed =
    phase "memplan"
      ~args:[ ("buffers", Trace.Json.Int (List.length requests)) ]
      (fun () ->
        Dory.Memplan.plan cfg.memory_strategy ~capacity:arena_capacity ~align:4
          requests)
    |> Result.map_error (function
         | Dory.Memplan.Out_of_memory { oom_bytes; oom_offset; oom_capacity; _ } as e
           ->
             Out_of_memory
               {
                 oom_region = "L2 arena";
                 oom_needed_bytes = oom_offset + oom_bytes;
                 oom_capacity_bytes = oom_capacity;
                 oom_detail = Dory.Memplan.error_to_string e;
               }
         | Dory.Memplan.Never_fits { nf_bytes; nf_capacity; _ } as e ->
             (* One activation buffer alone overflows the empty arena: a
                structured resource diagnosis, not a packing failure — no
                strategy (or segment demotion) could ever place it. *)
             Out_of_memory
               {
                 oom_region = "L2 arena";
                 oom_needed_bytes = nf_bytes;
                 oom_capacity_bytes = nf_capacity;
                 oom_detail = Dory.Memplan.error_to_string e;
               }
         | Dory.Memplan.Malformed_request _ as e ->
             Internal (Dory.Memplan.error_to_string e))
  in
  Trace.event trace ~cat:"memplan"
    ~args:
      [
        ("arena_capacity", Trace.Json.Int arena_capacity);
        ("peak_bytes", Trace.Json.Int placed.Dory.Memplan.peak_bytes);
      ]
    "memplan.peak";
  let buffers =
    List.map
      (fun (b : P.buffer) ->
        let p = Dory.Memplan.find placed b.P.buf_id in
        { b with P.l2_offset = l2_static_bytes + p.Dory.Memplan.offset })
      (List.rev !buffers)
  in
  let program =
    {
      P.graph = g;
      buffers;
      steps;
      input_buffers;
      output_buffer = Hashtbl.find buf_of_node (G.output g);
      weight_images = List.rev !images;
      l2_activation_peak = placed.Dory.Memplan.peak_bytes;
    }
  in
  let* () = Result.map_error (fun e -> Internal e) (P.validate program) in
  let schedules =
    List.mapi (fun i s -> (i, s)) steps
    |> List.filter_map (fun (i, s) ->
           match s with P.Accel { schedule; _ } -> Some (i, schedule) | P.Cpu _ -> None)
  in
  let layers =
    List.mapi
      (fun i u ->
        match u with
        | LAccel { layer; schedule; _ } ->
            {
              li_index = i;
              li_target = schedule.Dory.Schedule.accel_name;
              li_desc = L.describe layer;
              li_tiled = Dory.Schedule.is_tiled schedule;
              li_tile = Some schedule.Dory.Schedule.nominal;
            }
        | LCpu { kernel; _ } ->
            {
              li_index = i;
              li_target = "cpu";
              li_desc = kernel.Codegen.Fuse.kernel_name;
              li_tiled = false;
              li_tile = None;
            })
      units
  in
  (match metrics with
  | None -> ()
  | Some reg ->
      Metrics.inc
        (Metrics.counter reg ~help:"Segments demoted off their chosen target."
           "htvm_compile_demotions_total")
        (List.length !demotions);
      Metrics.inc
        (Metrics.counter reg ~help:"Autotuning trials measured on host kernels."
           "htvm_compile_tuning_trials_total")
        tuning_trials);
  Ok
    {
      cfg;
      program;
      plan = phase "plan" (fun () -> Sim.Plan.build ~platform:cfg.platform program);
      size;
      layers;
      c_source = phase "emit" (fun () -> Dory.Emit.emit_network schedules);
      l2_static_bytes;
      l2_arena_bytes = arena_capacity;
      tuning_trials;
      solver;
      demotions = List.rev !demotions;
    }

(* Artifact-tier front door. A verified hit skips every compile phase:
   the stored program/report is replayed, the execution plan is rebuilt,
   and the compile counters are registered from the stored solver stats —
   so the warm report matches the cold one modulo the process-wide
   solver-work counters that no work was done to advance. Any decode
   failure (or digest/header mismatch inside the store) falls back to a
   cold compile that overwrites the entry. *)
let compile ?trace ?metrics ?store cfg graph =
  match store with
  | None -> compile_cold ?trace ?metrics cfg graph
  | Some st -> (
      let key = artifact_store_key cfg graph in
      let recompute () =
        let r = compile_cold ?trace ?metrics ~store:st cfg graph in
        (match r with
        | Ok a -> Store.put st Store.Artifact ~key (artifact_payload a)
        | Error _ -> ());
        r
      in
      match Store.find st Store.Artifact ~key with
      | None -> recompute ()
      | Some payload -> (
          match stored_of_bytes payload with
          | None ->
              Store.invalidate st Store.Artifact ~key;
              recompute ()
          | Some stored ->
              Trace.event trace ~cat:"store"
                ~args:
                  [
                    ("tier", Trace.Json.Str "artifact");
                    ("digest", Trace.Json.Str (Digest.to_hex (Digest.string payload)));
                  ]
                "store.artifact_hit";
              (match metrics with
              | None -> ()
              | Some reg ->
                  let c name help v =
                    Metrics.inc (Metrics.counter reg ~help name) v
                  in
                  let s = stored.st_solver in
                  c "htvm_compile_solver_explored_total"
                    "Tiling candidates explored." s.ss_explored;
                  c "htvm_compile_solver_infeasible_total"
                    "Tiling candidates rejected as infeasible." s.ss_infeasible;
                  c "htvm_compile_solver_pruned_total"
                    "Tiling candidates pruned before full evaluation." s.ss_pruned;
                  c "htvm_compile_cache_hits_total"
                    "Tiling-cache hits this compile." s.ss_cache_hits;
                  c "htvm_compile_cache_misses_total"
                    "Tiling-cache misses this compile." s.ss_cache_misses;
                  c "htvm_compile_demotions_total"
                    "Segments demoted off their chosen target."
                    (List.length stored.st_demotions);
                  c "htvm_compile_tuning_trials_total"
                    "Autotuning trials measured on host kernels."
                    stored.st_tuning_trials);
              Ok (artifact_of_stored cfg stored)))

let run ?trace ?faults ?retry_budget ?(use_plan = true) artifact ~inputs =
  let plan = if use_plan then Some artifact.plan else None in
  Sim.Machine.run ~platform:artifact.cfg.platform ?trace ?faults ?retry_budget
    ?plan artifact.program ~inputs

let full_cycles (r : Sim.Machine.report) = r.Sim.Machine.totals.Sim.Counters.wall

let peak_cycles (r : Sim.Machine.report) =
  let t = r.Sim.Machine.totals in
  Sim.Counters.peak t + t.Sim.Counters.cpu_compute

let latency_ms cfg cycles = Arch.Platform.ms_of_cycles cfg.platform cycles
