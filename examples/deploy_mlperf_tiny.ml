(* Deploy an MLPerf Tiny network to a DIANA configuration and report
   per-step latency, the memory plan and optionally the generated C.

   Run with, e.g.:
     dune exec examples/deploy_mlperf_tiny.exe -- --model resnet8 --config both
     dune exec examples/deploy_mlperf_tiny.exe -- --model ds_cnn --emit-c *)

open Cmdliner

let deploy model config emit_c =
  let entry = try Models.Zoo.find model with Not_found ->
    Printf.eprintf "unknown model %S; known: %s\n" model
      (String.concat ", " (List.map (fun e -> e.Models.Zoo.model_name) Models.Zoo.all));
    exit 2
  in
  let platform, policy =
    match config with
    | "cpu" -> (Arch.Diana.cpu_only, Models.Policy.All_int8)
    | "digital" -> (Arch.Diana.digital_only, Models.Policy.All_int8)
    | "analog" -> (Arch.Diana.analog_only, Models.Policy.All_ternary)
    | "both" -> (Arch.Diana.platform, Models.Policy.Mixed)
    | other ->
        Printf.eprintf "unknown config %S (cpu|digital|analog|both)\n" other;
        exit 2
  in
  let g = entry.Models.Zoo.build policy in
  Printf.printf "%s (%s policy): %d ops, %.2f M MACs\n" entry.Models.Zoo.display_name
    (Models.Policy.to_string policy) (Ir.Graph.app_count g)
    (float_of_int (Models.Zoo.macs g) /. 1.0e6);
  let cfg = Htvm.Compile.default_config platform in
  match Htvm.Compile.compile cfg g with
  | Error e ->
      Printf.printf "compilation failed: %s\n" (Htvm.Compile.error_to_string e);
      exit 1
  | Ok artifact ->
      let inputs = Models.Zoo.random_input g in
      let out, report = Htvm.Compile.run artifact ~inputs in
      let reference = Ir.Eval.run g ~inputs in
      Printf.printf "simulated on %s: bit-exact vs interpreter = %b\n"
        platform.Arch.Platform.platform_name (Tensor.equal out reference);
      print_endline "\nper-step cycles:";
      let rows =
        List.map
          (fun (name, c) ->
            [ name; string_of_int c.Sim.Counters.wall;
              string_of_int (Sim.Counters.peak c);
              string_of_int (c.Sim.Counters.dma_in + c.Sim.Counters.dma_out);
              string_of_int c.Sim.Counters.cpu_compute ])
          report.Sim.Machine.per_step
      in
      print_string
        (Util.Table.render
           ~align:[ Util.Table.Left; Right; Right; Right; Right ]
           ~header:[ "step"; "wall"; "accel peak"; "dma"; "cpu" ]
           rows);
      let full = Htvm.Compile.full_cycles report in
      Printf.printf "\ntotal: %.3f ms (peak %.3f ms) @260 MHz\n"
        (Htvm.Compile.latency_ms cfg full)
        (Htvm.Compile.latency_ms cfg (Htvm.Compile.peak_cycles report));
      Printf.printf "L2: %d B static weights, %d B activation arena (peak use %d B)\n"
        artifact.Htvm.Compile.l2_static_bytes artifact.Htvm.Compile.l2_arena_bytes
        artifact.Htvm.Compile.program.Sim.Program.l2_activation_peak;
      Format.printf "binary size:@.%a@." Codegen.Size.pp artifact.Htvm.Compile.size;
      if emit_c then begin
        print_endline "\n--- generated C (DORY backend) ---";
        print_string artifact.Htvm.Compile.c_source
      end

let model =
  Arg.(value & opt string "resnet8" & info [ "model"; "m" ] ~doc:"MLPerf Tiny model name.")

let config =
  Arg.(value & opt string "digital" & info [ "config"; "c" ] ~doc:"cpu|digital|analog|both.")

let emit_c = Arg.(value & flag & info [ "emit-c" ] ~doc:"Print the generated C driver code.")

let cmd =
  Cmd.v
    (Cmd.info "deploy_mlperf_tiny" ~doc:"Deploy an MLPerf Tiny network on simulated DIANA")
    Term.(const deploy $ model $ config $ emit_c)

let () = exit (Cmd.eval cmd)
