(* Porting HTVM to a new platform (paper Sec. III-C / Sec. V): provide the
   hardware description — supported operations + rules, utilization
   heuristics, and invocation cycle models — and the whole flow works
   unchanged. lib/arch/nova.ml is such a description: a single systolic
   GEMM accelerator whose weights share L1, with stride-1-only support so
   some layers legitimately fall back to the host.

   Run with: dune exec examples/port_new_platform.exe *)

let deploy name platform g =
  let cfg = Htvm.Compile.default_config platform in
  match Htvm.Compile.compile cfg g with
  | Error e -> Printf.printf "%s: compile error: %s\n" name (Htvm.Compile.error_to_string e)
  | Ok artifact ->
      let inputs = Models.Zoo.random_input g in
      let out, report = Htvm.Compile.run artifact ~inputs in
      let exact = Tensor.equal out (Ir.Eval.run g ~inputs) in
      let offloaded =
        List.length
          (List.filter
             (fun (li : Htvm.Compile.layer_info) -> li.Htvm.Compile.li_target <> "cpu")
             artifact.Htvm.Compile.layers)
      in
      Printf.printf "%-8s %2d/%2d layers offloaded, %.3f ms @%d MHz, bit-exact %b\n" name
        offloaded
        (List.length artifact.Htvm.Compile.layers)
        (Htvm.Compile.latency_ms cfg (Htvm.Compile.full_cycles report))
        platform.Arch.Platform.freq_mhz exact

let () =
  print_endline "The same network compiled for two different SoCs:";
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  deploy "diana" Arch.Diana.digital_only g;
  deploy "nova" Arch.Nova.platform g;
  print_endline "";
  print_endline "NOVA's dispatch (stride-2 and depthwise layers stay on the host):";
  let cfg = Htvm.Compile.default_config Arch.Nova.platform in
  match Htvm.Compile.compile cfg g with
  | Error e -> print_endline (Htvm.Compile.error_to_string e)
  | Ok artifact ->
      List.iter
        (fun (li : Htvm.Compile.layer_info) ->
          Printf.printf "  [%s] %s\n" li.Htvm.Compile.li_target li.Htvm.Compile.li_desc)
        artifact.Htvm.Compile.layers
