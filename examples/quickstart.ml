(* Quickstart: build a small quantized CNN with the graph builder, compile
   it for DIANA with HTVM, execute it on the simulated SoC, and check the
   result against the reference interpreter.

   Run with: dune exec examples/quickstart.exe *)

module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

let () =
  (* 1. Build a quantized graph: conv -> requant -> maxpool -> dense. *)
  let rng = Util.Rng.create 42 in
  let b = B.create () in
  let x = B.input b ~name:"image" Dtype.I8 [| 3; 16; 16 |] in
  let w1 = B.const b (Tensor.random rng Dtype.I8 [| 16; 3; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w1 in
  let q1 = B.requantize b ~relu:true ~shift:11 ~out_dtype:Dtype.I8 conv in
  let pooled = B.max_pool b ~pool:(2, 2) ~stride:(2, 2) q1 in
  let flat = B.reshape b [| 16 * 8 * 8 |] pooled in
  let w2 = B.const b (Tensor.random rng Dtype.I8 [| 10; 1024 |]) in
  let fc = B.dense b flat ~weights:w2 in
  let logits = B.requantize b ~shift:13 ~out_dtype:Dtype.I8 fc in
  let g = B.finish b ~output:logits in
  Printf.printf "graph: %d operator applications\n" (Ir.Graph.app_count g);

  (* 2. Compile for DIANA (CPU + digital accelerator). *)
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  let artifact =
    match Htvm.Compile.compile cfg g with
    | Ok a -> a
    | Error e -> failwith ("compile failed: " ^ Htvm.Compile.error_to_string e)
  in
  List.iter
    (fun (li : Htvm.Compile.layer_info) ->
      Printf.printf "  step %d [%s] %s%s\n" li.Htvm.Compile.li_index
        li.Htvm.Compile.li_target li.Htvm.Compile.li_desc
        (if li.Htvm.Compile.li_tiled then " (tiled)" else ""))
    artifact.Htvm.Compile.layers;

  (* 3. Run on the simulated SoC and compare with the interpreter. *)
  let input = Tensor.random (Util.Rng.create 1) Dtype.I8 [| 3; 16; 16 |] in
  let out, report = Htvm.Compile.run artifact ~inputs:[ ("image", input) ] in
  let reference = Ir.Eval.run g ~inputs:[ ("image", input) ] in
  Printf.printf "bit-exact vs interpreter: %b\n" (Tensor.equal out reference);

  (* 4. Report latency and binary size. *)
  let full = Htvm.Compile.full_cycles report in
  Printf.printf "latency: %d cycles = %.3f ms @260 MHz (peak %d cycles)\n" full
    (Htvm.Compile.latency_ms cfg full)
    (Htvm.Compile.peak_cycles report);
  Format.printf "binary size:@.%a@." Codegen.Size.pp artifact.Htvm.Compile.size
