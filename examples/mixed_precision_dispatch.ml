(* Show the accelerator-aware dispatch rule at work (paper Sec. III-C):
   weight bit-width selects the accelerator — 8-bit convolutions go to the
   digital core, ternary ones to the analog array, depthwise and
   unsupported operators fall back to the RISC-V host.

   Run with: dune exec examples/mixed_precision_dispatch.exe *)

let show policy =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build policy in
  Printf.printf "\n== ResNet-8 under the %s policy ==\n" (Models.Policy.to_string policy);
  let cfg = Htvm.Compile.default_config Arch.Diana.platform in
  match Htvm.Compile.compile cfg g with
  | Error e -> Printf.printf "compile error: %s\n" (Htvm.Compile.error_to_string e)
  | Ok artifact ->
      List.iter
        (fun (li : Htvm.Compile.layer_info) ->
          Printf.printf "  %-14s %s\n" li.Htvm.Compile.li_target li.Htvm.Compile.li_desc)
        artifact.Htvm.Compile.layers;
      let digital, analog, cpu =
        List.fold_left
          (fun (d, a, c) (li : Htvm.Compile.layer_info) ->
            match li.Htvm.Compile.li_target with
            | "diana_digital" -> (d + 1, a, c)
            | "diana_analog" -> (d, a + 1, c)
            | _ -> (d, a, c + 1))
          (0, 0, 0) artifact.Htvm.Compile.layers
      in
      Printf.printf "  -> %d digital, %d analog, %d cpu kernels\n" digital analog cpu;
      let inputs = Models.Zoo.random_input g in
      let _, report = Htvm.Compile.run artifact ~inputs in
      Printf.printf "  -> %.3f ms end to end\n"
        (Htvm.Compile.latency_ms cfg (Htvm.Compile.full_cycles report))

let () =
  print_endline "Dispatch is driven by per-layer weight precision:";
  List.iter show [ Models.Policy.All_int8; Models.Policy.All_ternary; Models.Policy.Mixed ]
