(* The full pipeline from a floating-point model: post-training quantize
   with power-of-two scales (lib/quant), compile the resulting Listing-1
   graph with HTVM, execute on simulated DIANA, and report quantization
   quality (SQNR vs the float reference) next to latency.

   Run with: dune exec examples/float_to_diana.exe *)

let () =
  let model = Quant.Fmodel.random_cnn ~seed:2023 () in
  let rng = Util.Rng.create 1 in
  let calibration =
    List.init 8 (fun _ -> Quant.Ftensor.random rng model.Quant.Fmodel.f_input_shape)
  in
  print_endline "1. post-training quantization (power-of-two scales)";
  let g, meta =
    match Quant.Quantize.quantize ~calibration model with
    | Ok r -> r
    | Error e -> failwith e
  in
  Printf.printf "   input scale %gx, output scale %gx, %d quantized ops\n"
    meta.Quant.Quantize.input_scale meta.Quant.Quantize.output_scale
    (Ir.Graph.app_count g);

  print_endline "2. HTVM compilation for DIANA (CPU + digital)";
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  let artifact =
    match Htvm.Compile.compile cfg g with
    | Ok a -> a
    | Error e -> failwith (Htvm.Compile.error_to_string e)
  in
  List.iter
    (fun (li : Htvm.Compile.layer_info) ->
      Printf.printf "   [%s] %s\n" li.Htvm.Compile.li_target li.Htvm.Compile.li_desc)
    artifact.Htvm.Compile.layers;

  print_endline "3. simulated inference vs float reference";
  let x = Quant.Ftensor.random (Util.Rng.create 7) model.Quant.Fmodel.f_input_shape in
  let float_out = Quant.Fmodel.infer model x in
  let qx = Quant.Quantize.quantize_input meta x in
  let qout, report = Htvm.Compile.run artifact ~inputs:[ ("input", qx) ] in
  let deq = Quant.Quantize.dequantize_output meta qout in
  Printf.printf "   SQNR vs float: %.1f dB\n"
    (Quant.Ftensor.sqnr_db ~reference:float_out deq);
  Printf.printf "   bit-exact vs int interpreter: %b\n"
    (Tensor.equal qout (Ir.Eval.run g ~inputs:[ ("input", qx) ]));
  Printf.printf "   latency: %.3f ms; energy: %s\n"
    (Htvm.Compile.latency_ms cfg (Htvm.Compile.full_cycles report))
    (Format.asprintf "%a" Sim.Energy.pp
       (Sim.Energy.of_report Sim.Energy.diana_defaults report))
